// Package server exposes the recommendation system as an HTTP/JSON
// service — the deployment shape the paper describes for Twitter's
// Who-to-Follow ("hosted on a single server"). The service answers
// recommendation queries with any of the implemented methods (exact Tr,
// landmark-approximate Tr, Katz, TwitterRank), reports dataset and
// landmark-store statistics, and accepts follow/unfollow updates which it
// maintains through the dynamic landmark-refresh machinery.
//
// The HTTP surface is versioned under /v1 (see API.md; the sunset
// unversioned aliases only answer behind WithLegacyRoutes), and the
// serving path is load-managed: concurrent identical queries coalesce
// onto one engine exploration, engine work runs under a bounded
// admission pool that sheds with 429 once its queue fills, and exact-Tr
// queries degrade to the landmark approximation when their deadline
// cannot fit an exploration or the pool is under pressure. Standing
// queries (POST /v1/subscribe + SSE events) push top-k deltas through
// the same coalesced/degradable compute path, triggered by the dynamic
// manager's per-batch effects.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/katz"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/subscribe"
	"repro/internal/topics"
	"repro/internal/twitterrank"
)

// DefaultRequestTimeout bounds one /v1/recommend request unless
// overridden with WithRequestTimeout. Exact-Tr queries run graph
// explorations to convergence; without a deadline a pathological query
// pins its goroutine for as long as the exploration takes.
const DefaultRequestTimeout = 30 * time.Second

// maxBatchSize caps one /v1/recommend:batch request.
const maxBatchSize = 64

// Server is the HTTP facade. It is safe for concurrent requests; updates
// are serialized by the underlying dynamic.Manager.
type Server struct {
	mgr        *dynamic.Manager
	vocab      *topics.Vocabulary
	beta       float64
	cache      *resultCache
	cacheCap   int
	flight     *coalescer
	pool       *admission
	poolCfg    AdmissionConfig
	reg        *metrics.Registry
	reqTimeout time.Duration
	// router, when set, answers landmark-method queries by scatter/gather
	// over partition workers instead of the local engine.
	router *ShardRouter
	// pipe, when set, makes POST /v1/update enqueue into the streaming
	// ingestion pipeline instead of applying synchronously: accepted
	// batches answer 202 immediately, a full queue answers 429 with
	// Retry-After — the HTTP face of the pipeline's backpressure.
	pipe *ingest.Pipeline
	// degradeBudget is the static floor of the degradation threshold
	// (see degrade.go); 0 disables degradation.
	degradeBudget time.Duration
	// trLat calibrates the degradation threshold from observed exact-Tr
	// latencies.
	trLat latencyEWMA
	// computeHook, when non-nil, replaces the engine dispatch of compute
	// — the test seam proving coalescing/shedding without real
	// explorations.
	computeHook func(ctx context.Context, key cacheKey) ([]ranking.Scored, error)
	// pool recycles exploration scratches across baseline rebuilds; the
	// graph's node count and vocabulary survive updates, so one pool
	// outlives every rebuilt recommender.
	scratch *core.ScratchPool
	// hub owns the standing queries; its re-score worker computes through
	// hubCompute (the coalesced/degradable serving path).
	hub     *subscribe.Hub
	subsCfg SubscriptionConfig
	// legacy re-registers the sunset unversioned aliases (with
	// Deprecation/Sunset headers); off, they 404 like any unknown route.
	legacy bool

	// Metric handles, resolved once at construction.
	httpReqs        *metrics.CounterVec
	httpLat         *metrics.HistogramVec
	cacheHits       *metrics.Counter
	cacheMisses     *metrics.Counter
	cacheInvals     *metrics.Counter
	coalesceHits    *metrics.Counter
	shedReqs        *metrics.Counter
	degradedReqs    *metrics.Counter
	timeouts        *metrics.Counter
	rebuilds        *metrics.CounterVec
	rebuildSecs     *metrics.HistogramVec
	updatesApplied  *metrics.Counter
	updatesRejected *metrics.Counter

	mu      sync.Mutex
	baseGen int // update-batch count the cached baselines were built at
	katzRec ranking.Recommender
	twrRec  ranking.Recommender
}

// Option customizes a Server.
type Option func(*Server)

// WithMetrics uses reg instead of a fresh private registry, so several
// subsystems can share one exposition.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithRequestTimeout sets the per-request deadline applied to
// /v1/recommend; d <= 0 disables the deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// WithAdmission replaces the default admission pool sizing. A
// MaxInflight <= 0 disables admission control (and with it
// pressure-based degradation).
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.poolCfg = cfg }
}

// WithDegradeBudget sets the static remaining-deadline floor below which
// exact-Tr queries fall back to the landmark approximation; d <= 0
// disables degradation (exact queries then 504 on deadline expiry).
func WithDegradeBudget(d time.Duration) Option {
	return func(s *Server) { s.degradeBudget = d }
}

// WithShardRouter puts the server in scatter/gather mode: landmark-method
// queries (including degraded exact-Tr queries) fan out to the router's
// partition workers and merge exactly; the local engine only answers them
// when every shard fails.
func WithShardRouter(r *ShardRouter) Option {
	return func(s *Server) { s.router = r }
}

// WithCacheSize overrides the result-cache capacity (default 4096); 0
// disables result caching.
func WithCacheSize(n int) Option {
	return func(s *Server) { s.cacheCap = n }
}

// WithIngest routes POST /v1/update through the streaming ingestion
// pipeline (which must consume the same manager): updates are admitted
// into its bounded queue and applied asynchronously, with queue-full
// backpressure surfaced as 429 + Retry-After. The result cache is
// invalidated when each batch actually applies (the manager's batch
// hook) — until then reads may serve pre-update cached results, the
// staleness the streaming tier trades for bounded write latency.
func WithIngest(p *ingest.Pipeline) Option {
	return func(s *Server) { s.pipe = p }
}

// SubscriptionConfig sizes the standing-query hub.
type SubscriptionConfig struct {
	// MaxSubscriptions caps live subscriptions (<= 0 uses the hub default
	// of 1024); RescoreBudget bounds re-scores per worker cycle (<= 0
	// uses 32); EventBuffer bounds each subscription's event ring (<= 0
	// uses 64).
	MaxSubscriptions int
	RescoreBudget    int
	EventBuffer      int
}

// WithSubscriptions overrides the standing-query hub sizing.
func WithSubscriptions(cfg SubscriptionConfig) Option {
	return func(s *Server) { s.subsCfg = cfg }
}

// WithLegacyRoutes re-enables the sunset unversioned aliases (/health,
// /stats, /recommend, /updates, /topics, /metrics). They answer like
// their /v1 successors but stamp Deprecation/Sunset/Link headers; with
// the option off (the default) they return the uniform 404 envelope.
func WithLegacyRoutes(on bool) Option {
	return func(s *Server) { s.legacy = on }
}

// New builds a server over a dynamic manager. beta is the Katz decay used
// for the baseline. Results are served from a small LRU that updates
// invalidate wholesale. The manager is instrumented into the server's
// registry, so GET /v1/metrics covers the whole serving stack.
func New(mgr *dynamic.Manager, beta float64, opts ...Option) *Server {
	s := &Server{
		mgr:           mgr,
		vocab:         mgr.Graph().Vocabulary(),
		beta:          beta,
		cacheCap:      4096,
		reqTimeout:    DefaultRequestTimeout,
		degradeBudget: DefaultDegradeBudget,
		poolCfg:       DefaultAdmissionConfig(),
		scratch: core.NewScratchPool(mgr.Graph().NumNodes(),
			mgr.Graph().Vocabulary().Len()),
	}
	for _, o := range opts {
		o(s)
	}
	s.cache = newResultCache(s.cacheCap)
	s.flight = newCoalescer(s.cache)
	s.pool = newAdmission(s.poolCfg)
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	mgr.Instrument(s.reg)
	if s.router != nil {
		s.router.instrument(s.reg)
	}
	s.httpReqs = s.reg.CounterVec("http_requests_total",
		"Requests served, by method, route and status code.", "method", "route", "code")
	s.httpLat = s.reg.HistogramVec("http_request_seconds",
		"Request latency in seconds, by route.", nil, "route")
	s.cacheHits = s.reg.Counter("cache_hits_total", "Recommendation-cache hits.")
	s.cacheMisses = s.reg.Counter("cache_misses_total", "Recommendation-cache misses.")
	s.cacheInvals = s.reg.Counter("cache_invalidations_total",
		"Wholesale cache invalidations triggered by update batches.")
	s.coalesceHits = s.reg.Counter("coalesce_hits_total",
		"Requests served by joining an identical in-flight computation.")
	s.shedReqs = s.reg.Counter("requests_shed_total",
		"Recommendation requests shed with 429 by admission control.")
	s.degradedReqs = s.reg.Counter("requests_degraded_total",
		"Requests served with a degraded answer (landmark fallback or partial shard gather).")
	s.timeouts = s.reg.Counter("request_timeouts_total",
		"Recommendation requests cancelled by the per-request deadline.")
	s.rebuilds = s.reg.CounterVec("baseline_rebuilds_total",
		"Baseline recommender rebuilds after graph updates, by method.", "method")
	s.rebuildSecs = s.reg.HistogramVec("baseline_rebuild_seconds",
		"Time to rebuild a baseline recommender, by method.", nil, "method")
	s.updatesApplied = s.reg.Counter("updates_applied_total", "Follow/unfollow changes applied.")
	s.updatesRejected = s.reg.Counter("updates_rejected_total", "Update items rejected by validation.")
	s.reg.GaugeFunc("cache_entries", "Live entries in the recommendation cache.",
		func() float64 { return float64(s.cache.len()) })
	s.reg.GaugeFunc("admission_inflight", "Recommendation computations currently running.",
		func() float64 { return float64(s.pool.inflightNow()) })
	s.reg.GaugeFunc("admission_queue_depth", "Recommendation computations queued for a pool slot.",
		func() float64 { return float64(s.pool.queueDepth()) })
	s.hub = subscribe.New(subscribe.Config{
		MaxSubscriptions: s.subsCfg.MaxSubscriptions,
		RescoreBudget:    s.subsCfg.RescoreBudget,
		EventBuffer:      s.subsCfg.EventBuffer,
		Compute:          s.hubCompute,
		Neighborhood: func(k subscribe.Key) []graph.NodeID {
			return s.mgr.Neighborhood(k.User, k.Method == "tr")
		},
		Metrics: s.reg,
	})
	mgr.SetBatchHook(s.onBatchEffect)
	return s
}

// Close detaches the server from its manager and stops the subscription
// hub's worker, waking every blocked event reader. The server must not
// serve requests afterwards.
func (s *Server) Close() {
	s.mgr.SetBatchHook(nil)
	s.hub.Close()
}

// onBatchEffect is the manager's batch hook: it runs after every applied
// batch — synchronous Apply and streaming-pipeline applies alike. The
// cache invalidation must precede the hub marking: re-scores then run at
// the post-batch cache generation and can never join (or read) a
// pre-update in-flight computation.
func (s *Server) onBatchEffect(fx dynamic.BatchEffect) {
	s.cache.invalidate()
	s.cacheInvals.Inc()
	s.hub.OnBatch(fx)
}

// hubCompute answers one standing-query re-score through the same path a
// live request takes — degradation decision, result cache, coalesced
// admission-gated compute — so a re-score and a concurrent identical
// GET /v1/recommend share one execution and return identical rankings.
func (s *Server) hubCompute(ctx context.Context, k subscribe.Key) (subscribe.Result, error) {
	key := cacheKey{user: k.User, topic: k.Topic, n: k.N, method: k.Method}
	if s.router != nil {
		key.shardEpoch = s.router.Epoch()
	}
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	effKey := key
	degraded := false
	if key.method == "tr" && s.shouldDegrade(ctx) {
		effKey.method = "landmark"
		degraded = true
	}
	if scored, ok := s.cache.get(effKey); ok {
		s.cacheHits.Inc()
		return subscribe.Result{Scored: scored, Degraded: degraded}, nil
	}
	res, shared, err := s.flight.do(ctx, effKey, func() (computed, error) {
		return s.compute(ctx, effKey)
	})
	if err != nil {
		return subscribe.Result{}, err
	}
	if shared {
		s.coalesceHits.Inc()
	} else {
		s.cacheMisses.Inc()
	}
	return subscribe.Result{Scored: res.scored, Degraded: degraded || res.degraded}, nil
}

// Metrics returns the server's registry (for sharing with other
// subsystems or for tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// routeDef is one /v1 route: a path pattern (net/http ServeMux syntax,
// no method prefix — method dispatch is manual so unsupported methods
// get the uniform 405 envelope instead of the mux's plain-text error)
// and its per-method handlers.
type routeDef struct {
	pattern string
	methods map[string]http.HandlerFunc
}

// routes is the complete /v1 surface — the one list the mux, the metrics
// route labels and the API.md golden test are built from.
func (s *Server) routes() []routeDef {
	get := func(h http.HandlerFunc) map[string]http.HandlerFunc {
		return map[string]http.HandlerFunc{http.MethodGet: h}
	}
	post := func(h http.HandlerFunc) map[string]http.HandlerFunc {
		return map[string]http.HandlerFunc{http.MethodPost: h}
	}
	return []routeDef{
		{"/v1/health", get(s.handleHealth)},
		{"/v1/topics", get(s.handleTopics)},
		{"/v1/stats", get(s.handleStats)},
		{"/v1/recommend", get(s.handleRecommend)},
		{"/v1/recommend:batch", post(s.handleRecommendBatch)},
		{"/v1/update", post(s.handleUpdates)},
		{"/v1/metrics", get(s.reg.ServeHTTP)},
		{"/v1/subscribe", post(s.handleSubscribe)},
		{"/v1/subscribe/{id}", map[string]http.HandlerFunc{http.MethodDelete: s.handleUnsubscribe}},
		{"/v1/subscribe/{id}/events", get(s.handleEvents)},
	}
}

// sunsetDate is the Sunset header stamped on legacy aliases.
const sunsetDate = "Thu, 01 Apr 2027 00:00:00 GMT"

// Handler returns the route table: the versioned /v1 surface, a uniform
// envelope for unknown routes (404) and unsupported methods (405), and —
// only behind WithLegacyRoutes — the sunset unversioned aliases, which
// log once, stamp Deprecation/Sunset/Link headers and forward. Every
// route is wrapped in the request middleware; /v1/metrics exposes the
// registry in the Prometheus text format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		rt := rt
		allowed := make([]string, 0, len(rt.methods))
		for m := range rt.methods {
			allowed = append(allowed, m)
		}
		sort.Strings(allowed)
		allow := strings.Join(allowed, ", ")
		mux.HandleFunc(rt.pattern, s.instrument(rt.pattern, func(w http.ResponseWriter, r *http.Request) {
			h := rt.methods[r.Method]
			if h == nil && r.Method == http.MethodHead {
				h = rt.methods[http.MethodGet]
			}
			if h == nil {
				w.Header().Set("Allow", allow)
				s.writeError(w, errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
					"%s is not allowed on %s (allowed: %s)", r.Method, rt.pattern, allow))
				return
			}
			h(w, r)
		}))
	}
	if s.legacy {
		alias := func(method, route, successor string, h http.HandlerFunc) {
			var once sync.Once
			mux.HandleFunc(route, s.instrument(route, func(w http.ResponseWriter, r *http.Request) {
				if r.Method != method && !(r.Method == http.MethodHead && method == http.MethodGet) {
					w.Header().Set("Allow", method)
					s.writeError(w, errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
						"%s is not allowed on %s (allowed: %s)", r.Method, route, method))
					return
				}
				once.Do(func() {
					log.Printf("server: route %s is deprecated, use %s", route, successor)
				})
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Sunset", sunsetDate)
				w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
				h(w, r)
			}))
		}
		alias(http.MethodGet, "/health", "/v1/health", s.handleHealth)
		alias(http.MethodGet, "/topics", "/v1/topics", s.handleTopics)
		alias(http.MethodGet, "/stats", "/v1/stats", s.handleStats)
		alias(http.MethodGet, "/recommend", "/v1/recommend", s.handleRecommend)
		alias(http.MethodPost, "/updates", "/v1/update", s.handleUpdates)
		alias(http.MethodGet, "/metrics", "/v1/metrics", s.reg.ServeHTTP)
	}
	// Everything else — including the sunset aliases when legacy routing
	// is off — gets the envelope, not the mux's plain-text 404.
	mux.HandleFunc("/", s.instrument("unmatched", func(w http.ResponseWriter, r *http.Request) {
		s.writeError(w, errf(http.StatusNotFound, CodeNotFound,
			"no route %s %s (the API is versioned under /v1; see API.md)", r.Method, r.URL.Path))
	}))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client hangup only
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTopics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"topics": s.vocab.Names()})
}

// StatsResponse summarizes the served dataset and maintenance state.
type StatsResponse = client.StatsResponse

// IngestStats is the /v1/stats view of the streaming pipeline.
type IngestStats = client.IngestStats

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.mgr.Graph()
	st := graph.ComputeStats(g)
	ms := s.mgr.Stats()
	resp := StatsResponse{
		Nodes:        st.Nodes,
		Edges:        st.Edges,
		AvgOutDegree: st.AvgOut,
		AvgInDegree:  st.AvgIn,
		MaxInDegree:  st.MaxIn,
		Batches:      ms.Batches,
		Refreshes:    ms.Refreshes,
		Stale:        ms.StaleNow,
		Epoch:        ms.Epoch,
		OverlayDepth: ms.OverlayDepth,
		Compactions:  ms.Compactions,
	}
	if s.pipe != nil {
		ist := s.pipe.Stats()
		resp.Ingest = &IngestStats{
			QueueDepth: ist.Depth, QueueCap: ist.Cap,
			Enqueued: ist.Enqueued, Applied: ist.Applied,
			Rejected: ist.Rejected, Batches: ist.Batches,
		}
	}
	subs := s.hub.Stats()
	resp.Subscriptions = &subs
	writeJSON(w, http.StatusOK, resp)
}

// Recommendation is one entry of a recommendation response.
type Recommendation = client.Recommendation

// RecommendResponse is the /v1/recommend payload.
type RecommendResponse = client.RecommendResponse

// requestCtx applies the configured per-request deadline.
func (s *Server) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(ctx, s.reqTimeout)
	}
	return ctx, func() {}
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	req, herr := recommendRequestFromQuery(r.URL.Query())
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	key, herr := s.validateRecommend(req)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	ctx, cancel := s.requestCtx(r.Context())
	defer cancel()
	resp, herr := s.serveRecommend(ctx, key)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	w.Header().Set("X-Cache", resp.Cache)
	writeJSON(w, http.StatusOK, resp)
}

// BatchResult is one element of the /v1/recommend:batch response; items
// fail independently, carrying either a response or an error envelope.
type BatchResult = client.BatchResult

// handleRecommendBatch accepts a JSON array of RecommendRequest and
// answers each through the same validated, coalesced, admission-gated
// path as the single endpoint — duplicate items within one batch (or
// across concurrent batches) share one computation via the coalescer and
// the result cache.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	var reqs []RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad JSON: %v", err))
		return
	}
	if len(reqs) == 0 {
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "empty batch"))
		return
	}
	if len(reqs) > maxBatchSize {
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest,
			"batch of %d exceeds the %d-item limit", len(reqs), maxBatchSize))
		return
	}
	ctx, cancel := s.requestCtx(r.Context())
	defer cancel()
	results := make([]BatchResult, len(reqs))
	for i, req := range reqs {
		key, herr := s.validateRecommend(req)
		if herr == nil {
			var resp *RecommendResponse
			if resp, herr = s.serveRecommend(ctx, key); herr == nil {
				results[i] = BatchResult{Response: resp}
				continue
			}
		}
		results[i] = BatchResult{Error: &ErrorBody{Code: herr.code, Message: herr.msg}}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// serveRecommend answers one validated query through the load-managed
// path: degradation decision, result cache, then the coalesced,
// admission-gated computation.
func (s *Server) serveRecommend(ctx context.Context, key cacheKey) (*RecommendResponse, *httpError) {
	start := time.Now()
	effKey := key
	degraded := false
	if key.method == "tr" && s.shouldDegrade(ctx) {
		// The landmark approximation answers instead; computing (and
		// caching) under the landmark key means degraded queries and
		// plain landmark queries share work in both directions.
		effKey.method = "landmark"
		degraded = true
	}

	scored, cached := s.cache.get(effKey)
	source := "hit"
	if cached {
		s.cacheHits.Inc()
	} else {
		var shared bool
		var err error
		var res computed
		res, shared, err = s.flight.do(ctx, effKey, func() (computed, error) {
			return s.compute(ctx, effKey)
		})
		if err != nil {
			return nil, s.computeError(key.method, err)
		}
		scored = res.scored
		degraded = degraded || res.degraded
		if shared {
			source = "coalesced"
			s.coalesceHits.Inc()
		} else {
			source = "miss"
			s.cacheMisses.Inc()
		}
	}
	if degraded {
		// Counted here — on a successfully served degraded answer — not at
		// decision time, so requests that are subsequently shed or time out
		// don't inflate the series.
		s.degradedReqs.Inc()
	}

	g := s.mgr.Graph()
	resp := &RecommendResponse{
		Method:   key.method,
		Topic:    s.vocab.Name(key.topic),
		Degraded: degraded,
		Cache:    source,
		TookUS:   time.Since(start).Microseconds(),
	}
	for _, sc := range scored {
		resp.Results = append(resp.Results, Recommendation{
			User:    uint32(sc.Node),
			Score:   sc.Score,
			Topics:  splitTopics(s.vocab, g.NodeTopics(sc.Node)),
			Follows: g.InDegree(sc.Node),
		})
	}
	return resp, nil
}

// compute runs the underlying engine for one validated query. It is the
// only path that touches the exploration engines. Local computations run
// under the admission pool: when every slot is busy and the queue is full
// the query is shed with errOverloaded before any engine work starts.
// Scattered computations are not pool-gated — they are I/O-bound waits,
// and each partition worker bounds its own compute with shard-side
// admission (the resource-constrained per-shard view), so the front end
// can keep as many gathers in flight as shards can absorb.
func (s *Server) compute(ctx context.Context, key cacheKey) (computed, error) {
	if s.router != nil && key.method == "landmark" && s.computeHook == nil {
		return s.computeSharded(ctx, key)
	}
	if err := s.pool.acquire(ctx); err != nil {
		return computed{}, err
	}
	defer s.pool.release()
	if s.computeHook != nil {
		scored, err := s.computeHook(ctx, key)
		return computed{scored: scored}, err
	}
	switch key.method {
	case "landmark":
		scored, err := s.mgr.Recommend(key.user, key.topic, key.n)
		return computed{scored: scored}, err
	case "tr":
		t0 := time.Now()
		scored, err := s.mgr.RecommendExactCtx(ctx, key.user, key.topic, key.n)
		if err == nil {
			s.trLat.observe(time.Since(t0))
		}
		return computed{scored: scored}, err
	default: // katz, twitterrank — validated upstream
		rec, err := s.baseline(key.method)
		if err != nil {
			return computed{}, err
		}
		return computed{scored: rec.Recommend(key.user, key.topic, key.n)}, nil
	}
}

// computeSharded answers one landmark query by scatter/gather. All shards
// answering means the Proposition 2 merge is the exact single-machine
// result; a partial gather is served degraded (and not cached); a cluster
// that is uniformly overloaded sheds the request like local admission
// would; any other total failure falls back to the local landmark engine,
// degraded, under the local pool.
func (s *Server) computeSharded(ctx context.Context, key cacheKey) (computed, error) {
	g := s.router.Gather(ctx, key.user, key.topic)
	if g.failed < s.router.Shards() {
		scored := distrib.Merge(g.partials, key.user, key.n)
		return computed{scored: scored, degraded: g.failed > 0}, nil
	}
	if g.overloaded == g.failed {
		return computed{}, errOverloaded
	}
	s.router.fallbacks.Inc()
	if err := s.pool.acquire(ctx); err != nil {
		return computed{}, err
	}
	defer s.pool.release()
	scored, err := s.mgr.Recommend(key.user, key.topic, key.n)
	return computed{scored: scored, degraded: true}, err
}

// computeError maps a computation failure onto the error envelope.
func (s *Server) computeError(method string, err error) *httpError {
	switch {
	case errors.Is(err, errOverloaded):
		s.shedReqs.Inc()
		return errf(http.StatusTooManyRequests, CodeOverloaded,
			"server overloaded, retry later")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.timeouts.Inc()
		return errf(http.StatusGatewayTimeout, CodeDeadline,
			"%s recommendation exceeded the %s deadline", method, s.reqTimeout)
	default:
		return errf(http.StatusInternalServerError, CodeInternal,
			"%s recommendation failed: %v", method, err)
	}
}

func splitTopics(v *topics.Vocabulary, s topics.Set) []string {
	out := make([]string, 0, s.Len())
	s.ForEach(func(t topics.ID) { out = append(out, v.Name(t)) })
	return out
}

// baseline returns the cached Katz/TwitterRank recommender, rebuilding it
// when updates changed the graph since it was built.
func (s *Server) baseline(method string) (ranking.Recommender, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.mgr.Stats().Batches
	if gen != s.baseGen {
		s.katzRec, s.twrRec = nil, nil
		s.baseGen = gen
	}
	switch method {
	case "katz":
		if s.katzRec == nil {
			start := time.Now()
			rec, err := katz.New(s.mgr.Graph(), s.beta, 0)
			if err != nil {
				return nil, err
			}
			rec.UseScratchPool(s.scratch)
			s.katzRec = rec
			s.recordRebuild("katz", time.Since(start))
		}
		return s.katzRec, nil
	default:
		if s.twrRec == nil {
			start := time.Now()
			rec, err := twitterrank.New(twitterrank.InputFromProfiles(s.mgr.Graph()), twitterrank.DefaultParams())
			if err != nil {
				return nil, err
			}
			s.twrRec = rec
			s.recordRebuild("twitterrank", time.Since(start))
		}
		return s.twrRec, nil
	}
}

// recordRebuild counts one baseline rebuild and its duration.
func (s *Server) recordRebuild(method string, took time.Duration) {
	s.rebuilds.With(method).Inc()
	s.rebuildSecs.With(method).ObserveDuration(took)
}

// UpdateRequest is the /v1/update payload: a batch of follow/unfollow
// changes.
type UpdateRequest = client.UpdateRequest

// UpdateItem is one change. At optionally carries the event's Unix
// nanosecond timestamp for the time-decayed ingestion path; 0 lets the
// manager stamp arrival time.
type UpdateItem = client.UpdateItem

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.updatesRejected.Inc()
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad JSON: %v", err))
		return
	}
	if len(req.Updates) == 0 {
		s.updatesRejected.Inc()
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "empty update batch"))
		return
	}
	g := s.mgr.Graph()
	batch := make([]dynamic.Update, 0, len(req.Updates))
	for i, item := range req.Updates {
		if int(item.Src) >= g.NumNodes() || int(item.Dst) >= g.NumNodes() {
			s.updatesRejected.Inc()
			s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "update %d references unknown user", i))
			return
		}
		if item.Src == item.Dst {
			s.updatesRejected.Inc()
			s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "update %d is a self-follow", i))
			return
		}
		lbl, err := s.vocab.SetOf(item.Topics...)
		if err != nil {
			s.updatesRejected.Inc()
			s.writeError(w, errf(http.StatusBadRequest, CodeUnknownTopic, "update %d: %v", i, err))
			return
		}
		if lbl.IsEmpty() && !item.Remove {
			s.updatesRejected.Inc()
			s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "update %d: a follow needs at least one topic", i))
			return
		}
		batch = append(batch, dynamic.Update{
			Edge: graph.Edge{Src: graph.NodeID(item.Src), Dst: graph.NodeID(item.Dst), Label: lbl},
			Add:  !item.Remove,
			At:   item.At,
		})
	}
	if s.pipe != nil {
		// Streaming path: admit into the bounded pipeline. ErrFull is the
		// backpressure contract — nothing was admitted, the client backs
		// off and retries the whole batch.
		if err := s.pipe.Enqueue(batch...); err != nil {
			if errors.Is(err, ingest.ErrFull) {
				w.Header().Set("Retry-After", "1")
				s.updatesRejected.Add(uint64(len(batch)))
				s.writeError(w, errf(http.StatusTooManyRequests, CodeOverloaded,
					"ingestion queue full, retry later"))
				return
			}
			s.writeError(w, errf(http.StatusInternalServerError, CodeInternal, "enqueuing updates: %v", err))
			return
		}
		// No cache invalidation here: the manager's batch hook
		// (onBatchEffect) invalidates when the batch actually applies —
		// invalidating at admission would only repopulate the cache with
		// pre-update results until the queue drains.
		s.updatesApplied.Add(uint64(len(batch)))
		ist := s.pipe.Stats()
		writeJSON(w, http.StatusAccepted, &UpdateResponse{
			Accepted:   len(batch),
			QueueDepth: ist.Depth,
			QueueCap:   ist.Cap,
		})
		return
	}
	// The batch hook fires inside Apply (cache invalidation + standing-
	// query marking), so by the time this returns, reads are already at
	// the new generation.
	if err := s.mgr.Apply(batch); err != nil {
		s.writeError(w, errf(http.StatusInternalServerError, CodeInternal, "applying updates: %v", err))
		return
	}
	s.updatesApplied.Add(uint64(len(batch)))
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, &UpdateResponse{
		Applied:   len(batch),
		Refreshes: st.Refreshes,
		Stale:     st.StaleNow,
		Epoch:     st.Epoch,
	})
}

// UpdateResponse is the POST /v1/update payload.
type UpdateResponse = client.UpdateResponse
