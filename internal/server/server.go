// Package server exposes the recommendation system as an HTTP/JSON
// service — the deployment shape the paper describes for Twitter's
// Who-to-Follow ("hosted on a single server"). The service answers
// recommendation queries with any of the implemented methods (exact Tr,
// landmark-approximate Tr, Katz, TwitterRank), reports dataset and
// landmark-store statistics, and accepts follow/unfollow updates which it
// maintains through the dynamic landmark-refresh machinery.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/katz"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/topics"
	"repro/internal/twitterrank"
)

// DefaultRequestTimeout bounds one /recommend request unless overridden
// with WithRequestTimeout. Exact-Tr queries run graph explorations to
// convergence; without a deadline a pathological query pins its goroutine
// for as long as the exploration takes.
const DefaultRequestTimeout = 30 * time.Second

// Server is the HTTP facade. It is safe for concurrent requests; updates
// are serialized by the underlying dynamic.Manager.
type Server struct {
	mgr        *dynamic.Manager
	vocab      *topics.Vocabulary
	beta       float64
	cache      *resultCache
	reg        *metrics.Registry
	reqTimeout time.Duration
	// pool recycles exploration scratches across baseline rebuilds; the
	// graph's node count and vocabulary survive updates, so one pool
	// outlives every rebuilt recommender.
	pool *core.ScratchPool

	// Metric handles, resolved once at construction.
	httpReqs        *metrics.CounterVec
	httpLat         *metrics.HistogramVec
	cacheHits       *metrics.Counter
	cacheMisses     *metrics.Counter
	cacheInvals     *metrics.Counter
	timeouts        *metrics.Counter
	rebuilds        *metrics.CounterVec
	rebuildSecs     *metrics.HistogramVec
	updatesApplied  *metrics.Counter
	updatesRejected *metrics.Counter

	mu      sync.Mutex
	baseGen int // update-batch count the cached baselines were built at
	katzRec ranking.Recommender
	twrRec  ranking.Recommender
}

// Option customizes a Server.
type Option func(*Server)

// WithMetrics uses reg instead of a fresh private registry, so several
// subsystems can share one exposition.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithRequestTimeout sets the per-request deadline applied to /recommend;
// d <= 0 disables the deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.reqTimeout = d }
}

// New builds a server over a dynamic manager. beta is the Katz decay used
// for the baseline. Results are served from a small LRU that updates
// invalidate wholesale. The manager is instrumented into the server's
// registry, so GET /metrics covers the whole serving stack.
func New(mgr *dynamic.Manager, beta float64, opts ...Option) *Server {
	s := &Server{
		mgr:        mgr,
		vocab:      mgr.Graph().Vocabulary(),
		beta:       beta,
		cache:      newResultCache(4096),
		reqTimeout: DefaultRequestTimeout,
		pool: core.NewScratchPool(mgr.Graph().NumNodes(),
			mgr.Graph().Vocabulary().Len()),
	}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry()
	}
	mgr.Instrument(s.reg)
	s.httpReqs = s.reg.CounterVec("http_requests_total",
		"Requests served, by method, route and status code.", "method", "route", "code")
	s.httpLat = s.reg.HistogramVec("http_request_seconds",
		"Request latency in seconds, by route.", nil, "route")
	s.cacheHits = s.reg.Counter("cache_hits_total", "Recommendation-cache hits.")
	s.cacheMisses = s.reg.Counter("cache_misses_total", "Recommendation-cache misses.")
	s.cacheInvals = s.reg.Counter("cache_invalidations_total",
		"Wholesale cache invalidations triggered by update batches.")
	s.timeouts = s.reg.Counter("request_timeouts_total",
		"Recommendation requests cancelled by the per-request deadline.")
	s.rebuilds = s.reg.CounterVec("baseline_rebuilds_total",
		"Baseline recommender rebuilds after graph updates, by method.", "method")
	s.rebuildSecs = s.reg.HistogramVec("baseline_rebuild_seconds",
		"Time to rebuild a baseline recommender, by method.", nil, "method")
	s.updatesApplied = s.reg.Counter("updates_applied_total", "Follow/unfollow changes applied.")
	s.updatesRejected = s.reg.Counter("updates_rejected_total", "Update items rejected by validation.")
	s.reg.GaugeFunc("cache_entries", "Live entries in the recommendation cache.",
		func() float64 { return float64(s.cache.len()) })
	return s
}

// Metrics returns the server's registry (for sharing with other
// subsystems or for tests).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// Handler returns the route table. Every route is wrapped in the request
// middleware; /metrics exposes the registry in the Prometheus text
// format.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.instrument("/health", s.handleHealth))
	mux.HandleFunc("GET /topics", s.instrument("/topics", s.handleTopics))
	mux.HandleFunc("GET /stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("GET /recommend", s.instrument("/recommend", s.handleRecommend))
	mux.HandleFunc("POST /updates", s.instrument("/updates", s.handleUpdates))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.reg.ServeHTTP))
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client hangup only
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleTopics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"topics": s.vocab.Names()})
}

// StatsResponse summarizes the served dataset and maintenance state.
type StatsResponse struct {
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	AvgOutDegree float64 `json:"avg_out_degree"`
	AvgInDegree  float64 `json:"avg_in_degree"`
	MaxInDegree  int     `json:"max_in_degree"`
	Batches      int     `json:"update_batches"`
	Refreshes    int     `json:"landmark_refreshes"`
	Stale        int     `json:"stale_landmarks"`
	// Epoch identifies the graph snapshot served right now; it advances
	// with every applied batch and every overlay compaction.
	Epoch        uint64 `json:"epoch"`
	OverlayDepth int    `json:"overlay_depth"`
	Compactions  int    `json:"compactions"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.mgr.Graph()
	st := graph.ComputeStats(g)
	ms := s.mgr.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Nodes:        st.Nodes,
		Edges:        st.Edges,
		AvgOutDegree: st.AvgOut,
		AvgInDegree:  st.AvgIn,
		MaxInDegree:  st.MaxIn,
		Batches:      ms.Batches,
		Refreshes:    ms.Refreshes,
		Stale:        ms.StaleNow,
		Epoch:        ms.Epoch,
		OverlayDepth: ms.OverlayDepth,
		Compactions:  ms.Compactions,
	})
}

// Recommendation is one entry of a recommendation response.
type Recommendation struct {
	User    uint32   `json:"user"`
	Score   float64  `json:"score"`
	Topics  []string `json:"topics"`
	Follows int      `json:"followers"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	Method  string           `json:"method"`
	Topic   string           `json:"topic"`
	TookUS  int64            `json:"took_us"`
	Results []Recommendation `json:"results"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	userStr := q.Get("user")
	uid, err := strconv.Atoi(userStr)
	g := s.mgr.Graph()
	if err != nil || uid < 0 || uid >= g.NumNodes() {
		writeErr(w, http.StatusBadRequest, "bad user %q (want 0..%d)", userStr, g.NumNodes()-1)
		return
	}
	t, ok := s.vocab.Lookup(q.Get("topic"))
	if !ok {
		writeErr(w, http.StatusBadRequest, "unknown topic %q", q.Get("topic"))
		return
	}
	n := 10
	if ns := q.Get("n"); ns != "" {
		if n, err = strconv.Atoi(ns); err != nil || n < 1 || n > 1000 {
			writeErr(w, http.StatusBadRequest, "bad n %q (want 1..1000)", ns)
			return
		}
	}
	method := q.Get("method")
	if method == "" {
		method = "landmark"
	}

	ctx := r.Context()
	if s.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.reqTimeout)
		defer cancel()
	}

	key := cacheKey{user: graph.NodeID(uid), topic: t, n: n, method: method}
	start := time.Now()
	scored, cached := s.cache.get(key)
	if !cached {
		switch method {
		case "landmark":
			scored, err = s.mgr.Recommend(graph.NodeID(uid), t, n)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "landmark recommendation failed: %v", err)
				return
			}
		case "tr":
			scored, err = s.mgr.RecommendExactCtx(ctx, graph.NodeID(uid), t, n)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
					s.timeouts.Inc()
					writeErr(w, http.StatusGatewayTimeout, "exact recommendation exceeded the %s deadline", s.reqTimeout)
					return
				}
				writeErr(w, http.StatusInternalServerError, "exact recommendation failed: %v", err)
				return
			}
		case "katz", "twitterrank":
			rec, err := s.baseline(method)
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "building %s: %v", method, err)
				return
			}
			scored = rec.Recommend(graph.NodeID(uid), t, n)
		default:
			writeErr(w, http.StatusBadRequest, "unknown method %q (tr, landmark, katz, twitterrank)", method)
			return
		}
		s.cache.put(key, scored)
	}
	took := time.Since(start)
	if cached {
		s.cacheHits.Inc()
		w.Header().Set("X-Cache", "hit")
	} else {
		s.cacheMisses.Inc()
		w.Header().Set("X-Cache", "miss")
	}

	resp := RecommendResponse{
		Method: method,
		Topic:  s.vocab.Name(t),
		TookUS: took.Microseconds(),
	}
	for _, sc := range scored {
		resp.Results = append(resp.Results, Recommendation{
			User:    uint32(sc.Node),
			Score:   sc.Score,
			Topics:  splitTopics(s.vocab, g.NodeTopics(sc.Node)),
			Follows: g.InDegree(sc.Node),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func splitTopics(v *topics.Vocabulary, s topics.Set) []string {
	out := make([]string, 0, s.Len())
	s.ForEach(func(t topics.ID) { out = append(out, v.Name(t)) })
	return out
}

// baseline returns the cached Katz/TwitterRank recommender, rebuilding it
// when updates changed the graph since it was built.
func (s *Server) baseline(method string) (ranking.Recommender, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.mgr.Stats().Batches
	if gen != s.baseGen {
		s.katzRec, s.twrRec = nil, nil
		s.baseGen = gen
	}
	switch method {
	case "katz":
		if s.katzRec == nil {
			start := time.Now()
			rec, err := katz.New(s.mgr.Graph(), s.beta, 0)
			if err != nil {
				return nil, err
			}
			rec.UseScratchPool(s.pool)
			s.katzRec = rec
			s.recordRebuild("katz", time.Since(start))
		}
		return s.katzRec, nil
	default:
		if s.twrRec == nil {
			start := time.Now()
			rec, err := twitterrank.New(twitterrank.InputFromProfiles(s.mgr.Graph()), twitterrank.DefaultParams())
			if err != nil {
				return nil, err
			}
			s.twrRec = rec
			s.recordRebuild("twitterrank", time.Since(start))
		}
		return s.twrRec, nil
	}
}

// recordRebuild counts one baseline rebuild and its duration.
func (s *Server) recordRebuild(method string, took time.Duration) {
	s.rebuilds.With(method).Inc()
	s.rebuildSecs.With(method).ObserveDuration(took)
}

// UpdateRequest is the /updates payload: a batch of follow/unfollow
// changes.
type UpdateRequest struct {
	Updates []UpdateItem `json:"updates"`
}

// UpdateItem is one change.
type UpdateItem struct {
	Src    uint32   `json:"src"`
	Dst    uint32   `json:"dst"`
	Topics []string `json:"topics"`
	Remove bool     `json:"remove,omitempty"`
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.updatesRejected.Inc()
		writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if len(req.Updates) == 0 {
		s.updatesRejected.Inc()
		writeErr(w, http.StatusBadRequest, "empty update batch")
		return
	}
	g := s.mgr.Graph()
	batch := make([]dynamic.Update, 0, len(req.Updates))
	for i, item := range req.Updates {
		if int(item.Src) >= g.NumNodes() || int(item.Dst) >= g.NumNodes() {
			s.updatesRejected.Inc()
			writeErr(w, http.StatusBadRequest, "update %d references unknown user", i)
			return
		}
		if item.Src == item.Dst {
			s.updatesRejected.Inc()
			writeErr(w, http.StatusBadRequest, "update %d is a self-follow", i)
			return
		}
		lbl, err := s.vocab.SetOf(item.Topics...)
		if err != nil {
			s.updatesRejected.Inc()
			writeErr(w, http.StatusBadRequest, "update %d: %v", i, err)
			return
		}
		if lbl.IsEmpty() && !item.Remove {
			s.updatesRejected.Inc()
			writeErr(w, http.StatusBadRequest, "update %d: a follow needs at least one topic", i)
			return
		}
		batch = append(batch, dynamic.Update{
			Edge: graph.Edge{Src: graph.NodeID(item.Src), Dst: graph.NodeID(item.Dst), Label: lbl},
			Add:  !item.Remove,
		})
	}
	if err := s.mgr.Apply(batch); err != nil {
		writeErr(w, http.StatusInternalServerError, "applying updates: %v", err)
		return
	}
	s.updatesApplied.Add(uint64(len(batch)))
	s.cache.invalidate()
	s.cacheInvals.Inc()
	st := s.mgr.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"applied":   len(batch),
		"refreshes": st.Refreshes,
		"stale":     st.StaleNow,
		"epoch":     st.Epoch,
	})
}
