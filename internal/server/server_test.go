package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/gen"
	"repro/internal/landmark"
	"repro/internal/metrics"
)

// testManager builds a small dataset and a manager instrumented into reg
// (the trserver wiring: one registry across manager and server, so the
// initial preprocessing run is visible at /metrics too).
func testManager(t *testing.T, reg *metrics.Registry) (*dynamic.Manager, *gen.Dataset) {
	t.Helper()
	cfg := gen.DefaultTwitterConfig()
	cfg.Nodes = 600
	cfg.Seed = 5
	ds, err := gen.Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lms, err := landmark.Select(ds.Graph, landmark.InDeg, 6, landmark.DefaultSelectConfig())
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := dynamic.NewManager(ds.Graph, lms, dynamic.Config{
		Params: core.DefaultParams(), Sim: ds.Sim, StoreTopN: 100,
		QueryDepth: 2, Strategy: dynamic.Lazy, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, ds
}

func testServer(t *testing.T) (*httptest.Server, *gen.Dataset) {
	t.Helper()
	reg := metrics.NewRegistry()
	mgr, ds := testManager(t, reg)
	return newTestHTTP(t, New(mgr, core.DefaultParams().Beta, WithMetrics(reg))), ds
}

// legacyServer is testServer with the sunset unversioned aliases
// re-enabled (trserver -enable-legacy-routes).
func legacyServer(t *testing.T) (*httptest.Server, *gen.Dataset) {
	t.Helper()
	reg := metrics.NewRegistry()
	mgr, ds := testManager(t, reg)
	return newTestHTTP(t, New(mgr, core.DefaultParams().Beta, WithMetrics(reg), WithLegacyRoutes(true))), ds
}

// newTestHTTP serves a Server over httptest with cleanup (the hub worker
// stops before the listener does).
func newTestHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(s.Close)
	return srv
}

// getJSON and postJSON are thin shims over the typed client's transport
// (client.Do): the tests speak to the server through the same encode/
// decode path real consumers use, with the raw status still assertable.
func getJSON(t *testing.T, url string, wantCode int, out any) {
	t.Helper()
	doJSON(t, http.MethodGet, url, nil, wantCode, out)
}

func postJSON(t *testing.T, url string, body any, wantCode int, out any) {
	t.Helper()
	doJSON(t, http.MethodPost, url, body, wantCode, out)
}

func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var raw json.RawMessage
	status, err := client.New("", nil).Do(context.Background(), method, url, body, &raw)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	if status != wantCode {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, url, status, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v", method, url, err)
		}
	}
}

func TestHealthAndTopics(t *testing.T) {
	srv, ds := testServer(t)
	var health map[string]string
	getJSON(t, srv.URL+"/v1/health", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("health = %v", health)
	}
	var tp struct {
		Topics []string `json:"topics"`
	}
	getJSON(t, srv.URL+"/v1/topics", http.StatusOK, &tp)
	if len(tp.Topics) != ds.Vocabulary().Len() {
		t.Errorf("%d topics, want %d", len(tp.Topics), ds.Vocabulary().Len())
	}
}

func TestStats(t *testing.T) {
	srv, ds := testServer(t)
	var st StatsResponse
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &st)
	if st.Nodes != ds.Graph.NumNodes() || st.Edges != ds.Graph.NumEdges() {
		t.Errorf("stats = %+v", st)
	}
}

func TestRecommendMethods(t *testing.T) {
	srv, _ := testServer(t)
	for _, method := range []string{"landmark", "tr", "katz", "twitterrank"} {
		var resp RecommendResponse
		getJSON(t, fmt.Sprintf("%s/v1/recommend?user=11&topic=technology&n=5&method=%s", srv.URL, method),
			http.StatusOK, &resp)
		if resp.Method != method {
			t.Errorf("method echoed as %q", resp.Method)
		}
		if len(resp.Results) > 5 {
			t.Errorf("%s returned %d results for n=5", method, len(resp.Results))
		}
		for _, rec := range resp.Results {
			if rec.User == 11 {
				t.Errorf("%s recommended the query user", method)
			}
		}
	}
	// Default method is landmark.
	var resp RecommendResponse
	getJSON(t, srv.URL+"/v1/recommend?user=11&topic=technology", http.StatusOK, &resp)
	if resp.Method != "landmark" {
		t.Errorf("default method = %q", resp.Method)
	}
}

// errEnvelope mirrors the uniform /v1 error shape for decoding.
type errEnvelope struct {
	Error ErrorBody `json:"error"`
}

func TestRecommendErrors(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		path string
		code string
	}{
		{"/v1/recommend?user=abc&topic=technology", CodeBadRequest},
		{"/v1/recommend?user=999999&topic=technology", CodeBadRequest},
		{"/v1/recommend?user=-1&topic=technology", CodeBadRequest},
		{"/v1/recommend?topic=technology", CodeBadRequest}, // user missing entirely
		{"/v1/recommend?user=1", CodeUnknownTopic},         // topic missing entirely
		{"/v1/recommend?user=1&topic=nope", CodeUnknownTopic},
		{"/v1/recommend?user=1&topic=technology&n=0", CodeBadRequest},
		{"/v1/recommend?user=1&topic=technology&n=-3", CodeBadRequest},
		{"/v1/recommend?user=1&topic=technology&n=99999", CodeBadRequest},
		{"/v1/recommend?user=1&topic=technology&n=five", CodeBadRequest},
		{"/v1/recommend?user=1&topic=technology&method=magic", CodeUnknownMethod},
	}
	for _, c := range cases {
		var e errEnvelope
		getJSON(t, srv.URL+c.path, http.StatusBadRequest, &e)
		if e.Error.Code != c.code {
			t.Errorf("%s: error code %q, want %q", c.path, e.Error.Code, c.code)
		}
		if e.Error.Message == "" {
			t.Errorf("%s: missing error message", c.path)
		}
	}
}

// TestDeprecatedAliasesForward runs a legacy-enabled server: the
// unversioned routes answer identically to their /v1 successors and
// stamp the sunset headers.
func TestDeprecatedAliasesForward(t *testing.T) {
	srv, ds := legacyServer(t)
	var health map[string]string
	getJSON(t, srv.URL+"/health", http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Errorf("deprecated /health = %v", health)
	}
	var st StatsResponse
	getJSON(t, srv.URL+"/stats", http.StatusOK, &st)
	if st.Nodes != ds.Graph.NumNodes() {
		t.Errorf("deprecated /stats nodes = %d", st.Nodes)
	}
	var resp RecommendResponse
	getJSON(t, srv.URL+"/recommend?user=11&topic=technology&n=5", http.StatusOK, &resp)
	if resp.Method != "landmark" || len(resp.Results) == 0 {
		t.Errorf("deprecated /recommend = %+v", resp)
	}
	postJSON(t, srv.URL+"/updates", UpdateRequest{Updates: []UpdateItem{
		{Src: 2, Dst: 3, Topics: []string{"technology"}},
	}}, http.StatusOK, nil)
	// Deprecated errors use the same envelope.
	var e errEnvelope
	getJSON(t, srv.URL+"/recommend?user=1&topic=nope", http.StatusBadRequest, &e)
	if e.Error.Code != CodeUnknownTopic {
		t.Errorf("deprecated route error code = %q", e.Error.Code)
	}
	// Every alias response carries the deprecation trio.
	r, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.Header.Get("Deprecation") != "true" {
		t.Errorf("Deprecation header = %q, want true", r.Header.Get("Deprecation"))
	}
	if r.Header.Get("Sunset") == "" {
		t.Error("missing Sunset header on deprecated route")
	}
	if link := r.Header.Get("Link"); link != `</v1/health>; rel="successor-version"` {
		t.Errorf("Link header = %q", link)
	}
	// The /v1 successors never carry them.
	r2, err := http.Get(srv.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.Header.Get("Deprecation") != "" || r2.Header.Get("Sunset") != "" {
		t.Error("/v1 route carries deprecation headers")
	}
}

// TestLegacyRoutesOffByDefault pins the sunset: without
// WithLegacyRoutes the unversioned paths are gone — uniform 404
// envelope pointing at /v1, no forwarding.
func TestLegacyRoutesOffByDefault(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/health", "/topics", "/stats", "/recommend?user=1&topic=technology", "/metrics"} {
		var e errEnvelope
		getJSON(t, srv.URL+path, http.StatusNotFound, &e)
		if e.Error.Code != CodeNotFound {
			t.Errorf("%s: error code %q, want %q", path, e.Error.Code, CodeNotFound)
		}
	}
	var e errEnvelope
	postJSON(t, srv.URL+"/updates", UpdateRequest{}, http.StatusNotFound, &e)
	if e.Error.Code != CodeNotFound {
		t.Errorf("/updates: error code %q, want %q", e.Error.Code, CodeNotFound)
	}
}

// TestMethodNotAllowed sends each route the wrong HTTP verb; the route
// table must answer a 405 envelope with an Allow header, never
// dispatch. Unversioned aliases only exist on a legacy-enabled server.
func TestMethodNotAllowed(t *testing.T) {
	srv, _ := testServer(t)
	legacy, _ := legacyServer(t)
	cases := []struct {
		base         string
		method, path string
	}{
		{legacy.URL, http.MethodPost, "/recommend?user=1&topic=technology"},
		{legacy.URL, http.MethodDelete, "/recommend?user=1&topic=technology"},
		{legacy.URL, http.MethodGet, "/updates"},
		{legacy.URL, http.MethodPut, "/updates"},
		{legacy.URL, http.MethodPost, "/health"},
		{legacy.URL, http.MethodPost, "/metrics"},
		{srv.URL, http.MethodPost, "/v1/recommend?user=1&topic=technology"},
		{srv.URL, http.MethodGet, "/v1/update"},
		{srv.URL, http.MethodGet, "/v1/recommend:batch"},
		{srv.URL, http.MethodPost, "/v1/metrics"},
		{srv.URL, http.MethodGet, "/v1/subscribe"},
		{srv.URL, http.MethodPost, "/v1/subscribe/s1/events"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, c.base+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var e errEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, http.StatusMethodNotAllowed)
			continue
		}
		if derr != nil || e.Error.Code != CodeMethodNotAllowed {
			t.Errorf("%s %s: envelope %+v (decode err %v), want code %q", c.method, c.path, e, derr, CodeMethodNotAllowed)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", c.method, c.path)
		}
	}
}

func TestUpdatesFlow(t *testing.T) {
	srv, ds := testServer(t)
	var before StatsResponse
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &before)

	// A new follow appears...
	var applied UpdateResponse
	postJSON(t, srv.URL+"/v1/update", UpdateRequest{Updates: []UpdateItem{
		{Src: 1, Dst: 500, Topics: []string{"technology"}},
	}}, http.StatusOK, &applied)
	if applied.Applied != 1 {
		t.Errorf("applied = %+v", applied)
	}
	var after StatsResponse
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &after)
	if after.Edges != before.Edges+1 || after.Batches != before.Batches+1 {
		t.Errorf("stats before %+v after %+v", before, after)
	}
	// ...and is immediately visible to exact recommendations from user 1.
	var resp RecommendResponse
	getJSON(t, srv.URL+"/v1/recommend?user=1&topic=technology&method=tr&n=600", http.StatusOK, &resp)

	// Baselines rebuild after updates without error.
	getJSON(t, srv.URL+"/v1/recommend?user=1&topic=technology&method=katz&n=5", http.StatusOK, &resp)

	// Then the follow is removed again.
	postJSON(t, srv.URL+"/v1/update", UpdateRequest{Updates: []UpdateItem{
		{Src: 1, Dst: 500, Remove: true},
	}}, http.StatusOK, nil)
	var final StatsResponse
	getJSON(t, srv.URL+"/v1/stats", http.StatusOK, &final)
	if final.Edges != before.Edges {
		t.Errorf("edges = %d, want %d after add+remove", final.Edges, before.Edges)
	}
	_ = ds
}

// TestRecommendBatch drives POST /v1/recommend:batch: items succeed and
// fail independently, duplicates within a batch share the cache, and the
// JSON side's omitted n falls back to the default 10.
func TestRecommendBatch(t *testing.T) {
	srv, _ := testServer(t)
	var out struct {
		Results []BatchResult `json:"results"`
	}
	postJSON(t, srv.URL+"/v1/recommend:batch", []RecommendRequest{
		{User: 11, Topic: "technology", N: 5},
		{User: 11, Topic: "technology", N: 5}, // duplicate: served from cache
		{User: -1, Topic: "technology"},
		{User: 1, Topic: "nope"},
		{User: 12, Topic: "technology"}, // n omitted: default 10
	}, http.StatusOK, &out)
	if len(out.Results) != 5 {
		t.Fatalf("%d results, want 5", len(out.Results))
	}
	first := out.Results[0]
	if first.Error != nil || first.Response == nil || first.Response.Cache != "miss" {
		t.Errorf("item 0 = %+v, want a fresh response", first)
	}
	dup := out.Results[1]
	if dup.Response == nil || dup.Response.Cache != "hit" {
		t.Errorf("duplicate item = %+v, want a cache hit", dup)
	}
	if e := out.Results[2].Error; e == nil || e.Code != CodeBadRequest {
		t.Errorf("item 2 error = %+v, want %s", out.Results[2].Error, CodeBadRequest)
	}
	if e := out.Results[3].Error; e == nil || e.Code != CodeUnknownTopic {
		t.Errorf("item 3 error = %+v, want %s", out.Results[3].Error, CodeUnknownTopic)
	}
	if r := out.Results[4].Response; r == nil || len(r.Results) == 0 || len(r.Results) > 10 {
		t.Errorf("item 4 = %+v, want up to 10 default results", out.Results[4])
	}

	// Batch-level validation: empty and oversized batches are rejected
	// whole, as is a malformed body.
	postJSON(t, srv.URL+"/v1/recommend:batch", []RecommendRequest{}, http.StatusBadRequest, nil)
	big := make([]RecommendRequest, maxBatchSize+1)
	for i := range big {
		big[i] = RecommendRequest{User: 1, Topic: "technology"}
	}
	postJSON(t, srv.URL+"/v1/recommend:batch", big, http.StatusBadRequest, nil)
	resp, err := http.Post(srv.URL+"/v1/recommend:batch", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage batch body: status %d", resp.StatusCode)
	}
}

func TestUpdatesValidation(t *testing.T) {
	srv, _ := testServer(t)
	cases := []UpdateRequest{
		{},
		{Updates: []UpdateItem{{Src: 1, Dst: 1, Topics: []string{"technology"}}}},
		{Updates: []UpdateItem{{Src: 1, Dst: 999999, Topics: []string{"technology"}}}},
		{Updates: []UpdateItem{{Src: 1, Dst: 2, Topics: []string{"nope"}}}},
		{Updates: []UpdateItem{{Src: 1, Dst: 2}}}, // follow without topics
	}
	for i, c := range cases {
		postJSON(t, srv.URL+"/v1/update", c, http.StatusBadRequest, nil)
		_ = i
	}
	// Non-JSON body.
	resp, err := http.Post(srv.URL+"/v1/update", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
}
