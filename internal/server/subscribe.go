// subscribe.go is the HTTP face of the standing-query hub: register
// (POST /v1/subscribe), stream deltas (GET /v1/subscribe/{id}/events —
// SSE by default, long-poll with ?mode=poll), and tear down (DELETE
// /v1/subscribe/{id}).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/subscribe"
)

// Long-poll wait bounds for ?mode=poll.
const (
	defaultPollWait = 10 * time.Second
	maxPollWait     = 60 * time.Second
)

// handleSubscribe registers a standing query. The body is the same
// RecommendRequest the query endpoints take, validated by the same path;
// only the incremental methods accept subscriptions — the katz and
// twitterrank baselines rebuild globally per batch, so "which
// neighborhoods moved" cannot bound their re-scores.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad JSON: %v", err))
		return
	}
	key, herr := s.validateRecommend(req)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	if key.method != "tr" && key.method != "landmark" {
		s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest,
			"method %q does not support subscriptions (tr, landmark)", key.method))
		return
	}
	id, err := s.hub.Register(subscribe.Key{User: key.user, Topic: key.topic, N: key.n, Method: key.method})
	if err != nil {
		if errors.Is(err, subscribe.ErrLimit) {
			s.writeError(w, errf(http.StatusTooManyRequests, CodeOverloaded,
				"subscription limit reached, retry later"))
			return
		}
		s.writeError(w, errf(http.StatusInternalServerError, CodeInternal, "registering subscription: %v", err))
		return
	}
	writeJSON(w, http.StatusCreated, client.Subscription{
		ID:     id,
		User:   int(key.user),
		Topic:  s.vocab.Name(key.topic),
		N:      key.n,
		Method: key.method,
	})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.hub.Unsubscribe(id); err != nil {
		s.writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown subscription %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "unsubscribed": true})
}

// handleEvents streams a subscription's deltas. The default is SSE
// (text/event-stream, frames `id:`/`event: topk`/`data:`); ?mode=poll
// long-polls one JSON batch instead. Resume positions come from the
// Last-Event-ID header (SSE reconnects) or ?after= (long-poll); a
// position that has lapsed out of the bounded event ring resyncs with a
// synthesized Reset snapshot at connect, while a consumer that lapses
// mid-stream is disconnected (dropped-slow-consumer semantics).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	q := r.URL.Query()
	var after uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad Last-Event-ID %q", lei))
			return
		}
		after = v
	}
	if as := q.Get("after"); as != "" {
		v, err := strconv.ParseUint(as, 10, 64)
		if err != nil {
			s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad after %q", as))
			return
		}
		after = v
	}
	if q.Get("mode") == "poll" {
		wait := defaultPollWait
		if ws := q.Get("wait"); ws != "" {
			d, err := time.ParseDuration(ws)
			if err != nil || d < 0 {
				s.writeError(w, errf(http.StatusBadRequest, CodeBadRequest, "bad wait %q (want a duration)", ws))
				return
			}
			wait = min(d, maxPollWait)
		}
		s.servePollEvents(w, r, id, after, wait)
		return
	}
	s.serveSSEEvents(w, r, id, after)
}

// servePollEvents is the long-poll fallback: it answers as soon as
// events past `after` exist, or with an empty batch once `wait` elapses.
// A lapsed position always resyncs (the poll response carries the Reset
// snapshot) — a stateless poller cannot be "disconnected".
func (s *Server) servePollEvents(w http.ResponseWriter, r *http.Request, id string, after uint64, wait time.Duration) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		events, notify, err := s.hub.EventsSince(id, after, true)
		if err != nil {
			s.writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown subscription %q", id))
			return
		}
		if len(events) > 0 {
			writeJSON(w, http.StatusOK, client.EventsResponse{Events: events})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			writeJSON(w, http.StatusOK, client.EventsResponse{Events: []client.Event{}})
			return
		case <-notify:
		}
	}
}

// serveSSEEvents streams frames until the client disconnects, the
// subscription is torn down, or the consumer lapses behind the ring.
func (s *Server) serveSSEEvents(w http.ResponseWriter, r *http.Request, id string, after uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, errf(http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection"))
		return
	}
	// Probe before committing to the stream so an unknown id still gets
	// the 404 envelope. resync=true: a Last-Event-ID that lapsed while
	// the client was away synthesizes a Reset snapshot instead of
	// failing the reconnect.
	events, notify, err := s.hub.EventsSince(id, after, true)
	if err != nil {
		s.writeError(w, errf(http.StatusNotFound, CodeNotFound, "unknown subscription %q", id))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	keepAlive := time.NewTicker(20 * time.Second)
	defer keepAlive.Stop()
	for {
		for _, ev := range events {
			data, merr := json.Marshal(ev)
			if merr != nil {
				return
			}
			if _, werr := fmt.Fprintf(w, "id: %d\nevent: topk\ndata: %s\n\n", ev.Seq, data); werr != nil {
				return
			}
			after = ev.Seq
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, werr := fmt.Fprint(w, ": keep-alive\n\n"); werr != nil {
				return
			}
			flusher.Flush()
		case <-notify:
		}
		// Mid-stream reads never resync: a gap here means this consumer
		// fell behind the ring while connected — drop it (the hub counts
		// the drop; the client reconnects and resyncs).
		events, notify, err = s.hub.EventsSince(id, after, false)
		if err != nil {
			return
		}
	}
}
