package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// flushHub drains the standing-query worker to quiescence.
func flushHub(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.hub.Flush(ctx); err != nil {
		t.Fatalf("hub flush: %v", err)
	}
}

// resultIDs projects a recommendation list to its ranked user ids.
func resultIDs(results []Recommendation) []uint32 {
	out := make([]uint32, len(results))
	for i, r := range results {
		out[i] = r.User
	}
	return out
}

func entryIDs(top []client.Entry) []uint32 {
	out := make([]uint32, len(top))
	for i, e := range top {
		out[i] = e.User
	}
	return out
}

func sameIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSubscribeLifecycle(t *testing.T) {
	s, base, _ := loadTestServer(t)
	c := client.New(base, nil)
	ctx := context.Background()

	sub, err := c.Subscribe(ctx, client.RecommendRequest{User: 11, Topic: "technology", N: 5, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.User != 11 || sub.Topic != "technology" || sub.N != 5 || sub.Method != "landmark" {
		t.Fatalf("subscription = %+v", sub)
	}
	flushHub(t, s)

	// The initial push is a Reset snapshot identical to a fresh GET.
	events, err := c.PollEvents(ctx, sub.ID, 0, "2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Reset {
		t.Fatalf("initial events = %+v, want one Reset", events)
	}
	rec, err := c.Recommend(ctx, client.RecommendRequest{User: 11, Topic: "technology", N: 5, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(entryIDs(events[0].Top), resultIDs(rec.Results)) {
		t.Errorf("reset snapshot %v != fresh GET %v", entryIDs(events[0].Top), resultIDs(rec.Results))
	}

	// An empty poll window answers an empty batch, not an error.
	events, err = c.PollEvents(ctx, sub.ID, events[0].Seq, "30ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Errorf("idle poll returned %+v", events)
	}

	if err := c.Unsubscribe(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	if _, err := c.PollEvents(ctx, sub.ID, 0, "10ms"); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != client.CodeNotFound {
		t.Errorf("events after unsubscribe: %v, want 404 %s", err, client.CodeNotFound)
	}
	if err := c.Unsubscribe(ctx, sub.ID); !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("double unsubscribe: %v, want 404", err)
	}

	// Baseline methods cannot subscribe: their global rebuilds defeat the
	// affected-index bound.
	for _, m := range []string{"katz", "twitterrank"} {
		_, err := c.Subscribe(ctx, client.RecommendRequest{User: 11, Topic: "technology", Method: m})
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Errorf("subscribe method=%s: %v, want 400", m, err)
		}
	}
	// Validation runs the shared path.
	if _, err := c.Subscribe(ctx, client.RecommendRequest{User: -1, Topic: "technology"}); !errors.As(err, &apiErr) || apiErr.Code != client.CodeBadRequest {
		t.Errorf("subscribe bad user: %v", err)
	}
	if _, err := c.Subscribe(ctx, client.RecommendRequest{User: 1, Topic: "nope"}); !errors.As(err, &apiErr) || apiErr.Code != client.CodeUnknownTopic {
		t.Errorf("subscribe bad topic: %v", err)
	}
}

// TestSubscribeDifferentialCorrectness is the acceptance criterion: for a
// recorded trace of update batches, the pushed delta sequence must
// reconstruct exactly the top-k a fresh GET /v1/recommend returns at each
// batch epoch — identical ids in identical order.
func TestSubscribeDifferentialCorrectness(t *testing.T) {
	s, base, _ := loadTestServer(t)
	c := client.New(base, nil)
	ctx := context.Background()
	const user, n = 11, 5
	req := client.RecommendRequest{User: user, Topic: "technology", N: n, Method: "landmark"}

	sub, err := c.Subscribe(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	events, err := c.PollEvents(ctx, sub.ID, 0, "2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Reset {
		t.Fatalf("initial events = %+v", events)
	}
	reconstructed := entryIDs(events[0].Top)
	lastSeq := events[0].Seq

	// The trace: adds and removes around the subscribed user (so marks
	// land), plus one >8-item batch exercising the Global effect path.
	g := s.mgr.Graph()
	var free []uint32
	for dst := uint32(400); dst < 600 && len(free) < 6; dst++ {
		if dst != user && !g.HasEdge(graph.NodeID(user), graph.NodeID(dst)) {
			free = append(free, dst)
		}
	}
	if len(free) < 6 {
		t.Fatal("dataset left no free edge slots for the trace")
	}
	var global []client.UpdateItem
	for i := 0; i < 9; i++ {
		global = append(global, client.UpdateItem{Src: uint32(300 + i), Dst: uint32(320 + i), Topics: []string{"technology"}})
	}
	trace := [][]client.UpdateItem{
		{{Src: user, Dst: free[0], Topics: []string{"technology"}}},
		{{Src: user, Dst: free[1], Topics: []string{"technology"}}, {Src: user, Dst: free[2], Topics: []string{"technology"}}},
		{{Src: user, Dst: free[0], Remove: true}},
		{{Src: free[3], Dst: user, Topics: []string{"technology"}}},
		global,
		{{Src: user, Dst: free[4], Topics: []string{"technology"}}, {Src: user, Dst: free[1], Remove: true}},
	}

	for epoch, batch := range trace {
		if _, err := c.Update(ctx, batch); err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		flushHub(t, s)
		events, err := c.PollEvents(ctx, sub.ID, lastSeq, "30ms")
		if err != nil {
			t.Fatalf("epoch %d: poll: %v", epoch, err)
		}
		for _, ev := range events {
			if ev.Seq != lastSeq+1 {
				t.Fatalf("epoch %d: seq %d after %d, want contiguous", epoch, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Reset {
				reconstructed = entryIDs(ev.Top)
				continue
			}
			// Replay the delta against the reconstruction: membership must
			// evolve by exactly Added/Removed, then adopt the pushed order.
			have := make(map[uint32]bool, len(reconstructed))
			for _, id := range reconstructed {
				have[id] = true
			}
			for _, id := range ev.Added {
				if have[id] {
					t.Errorf("epoch %d: delta adds %d already present", epoch, id)
				}
				have[id] = true
			}
			for _, id := range ev.Removed {
				if !have[id] {
					t.Errorf("epoch %d: delta removes %d not present", epoch, id)
				}
				delete(have, id)
			}
			next := entryIDs(ev.Top)
			if len(next) != len(have) {
				t.Errorf("epoch %d: delta reconstructs %d members, snapshot has %d", epoch, len(have), len(next))
			}
			for _, id := range next {
				if !have[id] {
					t.Errorf("epoch %d: snapshot member %d not derivable from deltas", epoch, id)
				}
			}
			reconstructed = next
		}
		rec, err := c.Recommend(ctx, req)
		if err != nil {
			t.Fatalf("epoch %d: recommend: %v", epoch, err)
		}
		if fresh := resultIDs(rec.Results); !sameIDs(reconstructed, fresh) {
			t.Errorf("epoch %d: reconstructed top-k %v != fresh GET %v", epoch, reconstructed, fresh)
		}
	}
}

// twoComponentServer builds a server over a graph with two disconnected
// components (A: 0..9, B: 10..19, landmarks 3 and 13) so "batch touching
// no subscribed neighborhood" is a structural fact, not a sampling
// accident.
func twoComponentServer(t *testing.T) (*Server, string) {
	t.Helper()
	vocab := topics.MustVocabulary([]string{"technology"})
	tech := vocab.MustLookup("technology")
	label := topics.NewSet(tech)
	b := graph.NewBuilder(vocab, 20)
	for u := graph.NodeID(0); u < 20; u++ {
		b.SetNodeTopics(u, label)
	}
	addComponent := func(base graph.NodeID) {
		edges := [][2]graph.NodeID{
			{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}, {3, 5}, {5, 6}, {1, 3}, {2, 5},
		}
		for _, e := range edges {
			b.AddEdge(base+e[0], base+e[1], label)
		}
	}
	addComponent(0)
	addComponent(10)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	mgr, err := dynamic.NewManager(g, []graph.NodeID{3, 13}, dynamic.Config{
		Params: core.DefaultParams(), Sim: topics.FlatTaxonomy(vocab).SimMatrix(),
		StoreTopN: 20, QueryDepth: 2, Strategy: dynamic.Lazy, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(mgr, core.DefaultParams().Beta, WithMetrics(reg))
	srv := newTestHTTP(t, s)
	return s, srv.URL
}

// TestSubscribeEfficiencyGate is the other acceptance criterion, made
// deterministic by graph structure: a batch entirely inside the other
// component triggers zero re-scores (and zero marks), a batch touching
// the subscribed neighborhood exactly one.
func TestSubscribeEfficiencyGate(t *testing.T) {
	s, base := twoComponentServer(t)
	c := client.New(base, nil)
	ctx := context.Background()

	sub, err := c.Subscribe(ctx, client.RecommendRequest{User: 0, Topic: "technology", N: 5, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	st0 := s.hub.Stats()

	// Batches confined to component B: the affected-subscription index
	// must not mark, the worker must not run.
	for i, e := range [][2]uint32{{15, 18}, {16, 19}, {17, 10}, {18, 12}} {
		if _, err := c.Update(ctx, []client.UpdateItem{
			{Src: e[0], Dst: e[1], Topics: []string{"technology"}},
		}); err != nil {
			t.Fatalf("B-side update %d: %v", i, err)
		}
	}
	flushHub(t, s)
	st1 := s.hub.Stats()
	if st1.Rescores != st0.Rescores {
		t.Errorf("disconnected batches re-scored: %d -> %d", st0.Rescores, st1.Rescores)
	}
	if st1.RescoreMarks != st0.RescoreMarks {
		t.Errorf("disconnected batches marked: %d -> %d", st0.RescoreMarks, st1.RescoreMarks)
	}

	// One batch touching the subscribed neighborhood: exactly one
	// re-score (the efficiency bound: executions <= affected groups).
	if _, err := c.Update(ctx, []client.UpdateItem{
		{Src: 0, Dst: 7, Topics: []string{"technology"}},
	}); err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	st2 := s.hub.Stats()
	if got := st2.Rescores - st1.Rescores; got != 1 {
		t.Errorf("touching batch ran %d re-scores, want 1", got)
	}

	// The push still reconciles with a fresh GET after the B-side noise.
	events, err := c.PollEvents(ctx, sub.ID, 0, "2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events after touching batch")
	}
	last := events[len(events)-1]
	rec, err := c.Recommend(ctx, client.RecommendRequest{User: 0, Topic: "technology", N: 5, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(entryIDs(last.Top), resultIDs(rec.Results)) {
		t.Errorf("pushed top %v != fresh GET %v", entryIDs(last.Top), resultIDs(rec.Results))
	}
}

// TestSubscribeSharedKeySingleRescore: S subscribers of one standing
// query cost one coalesced re-score per batch, end to end over HTTP.
func TestSubscribeSharedKeySingleRescore(t *testing.T) {
	s, base, reg := loadTestServer(t)
	c := client.New(base, nil)
	ctx := context.Background()
	req := client.RecommendRequest{User: 11, Topic: "technology", N: 5, Method: "landmark"}
	var ids []string
	for i := 0; i < 4; i++ {
		sub, err := c.Subscribe(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sub.ID)
	}
	flushHub(t, s)
	before := s.hub.Stats()
	if before.Groups != 1 || before.Active != 4 {
		t.Fatalf("stats = %+v, want 4 subs in 1 group", before)
	}
	if _, err := c.Update(ctx, []client.UpdateItem{{Src: 11, Dst: 590, Topics: []string{"technology"}}}); err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	after := s.hub.Stats()
	if got := after.Rescores - before.Rescores; got != 1 {
		t.Errorf("4 subscribers cost %d re-scores for one batch, want 1", got)
	}
	if got := reg.Counter("subscribe_rescores_total", "").Value(); uint64(got) != after.Rescores {
		t.Errorf("subscribe_rescores_total = %d, stats say %d", got, after.Rescores)
	}
	for _, id := range ids {
		if err := c.Unsubscribe(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSubscribeSSE drives the push path through the typed client's SSE
// stream: Reset frame at connect, a delta frame after an update moves the
// top-k (the computeHook controls both rankings deterministically), and a
// clean stream end on unsubscribe.
func TestSubscribeSSE(t *testing.T) {
	s, base, _ := loadTestServer(t)
	var mu sync.Mutex
	top := []ranking.Scored{{Node: 42, Score: 2}, {Node: 43, Score: 1}}
	s.computeHook = func(ctx context.Context, key cacheKey) ([]ranking.Scored, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]ranking.Scored(nil), top...), nil
	}
	c := client.New(base, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	sub, err := c.Subscribe(ctx, client.RecommendRequest{User: 11, Topic: "technology", N: 2, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := c.Events(ctx, sub.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	first, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Reset || !sameIDs(entryIDs(first.Top), []uint32{42, 43}) {
		t.Fatalf("first frame = %+v, want Reset [42 43]", first)
	}

	// Swap the ranking and land a batch on the subscribed neighborhood.
	mu.Lock()
	top = []ranking.Scored{{Node: 43, Score: 3}, {Node: 44, Score: 2}}
	mu.Unlock()
	if _, err := c.Update(ctx, []client.UpdateItem{{Src: 11, Dst: 591, Topics: []string{"technology"}}}); err != nil {
		t.Fatal(err)
	}
	delta, err := stream.Next()
	if err != nil {
		t.Fatal(err)
	}
	if delta.Reset || delta.Seq != first.Seq+1 {
		t.Fatalf("delta frame = %+v, want non-reset seq %d", delta, first.Seq+1)
	}
	if !sameIDs(delta.Added, []uint32{44}) || !sameIDs(delta.Removed, []uint32{42}) {
		t.Errorf("delta = added %v removed %v, want added [44] removed [42]", delta.Added, delta.Removed)
	}
	if !sameIDs(entryIDs(delta.Top), []uint32{43, 44}) {
		t.Errorf("delta top = %v, want [43 44]", entryIDs(delta.Top))
	}

	// Tear down server-side: the stream must end, not hang.
	if err := c.Unsubscribe(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Next(); err == nil {
		t.Error("stream still delivering after unsubscribe")
	}

	// Reconnect resume: a fresh stream with Last-Event-ID replays nothing
	// old and resynchronizes from the current snapshot on a lapse-free
	// position without duplicating frames.
	stream2, err := c.Events(ctx, sub.ID, 0)
	var apiErr *client.APIError
	if err == nil {
		stream2.Close()
		t.Fatal("stream for a deleted subscription opened")
	}
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Errorf("deleted-subscription stream error = %v, want 404", err)
	}
}

// TestSubscribeDegradedRescore: under pressure (impossible deadline,
// generous degrade budget) an exact-Tr standing query is re-scored by the
// landmark engine and its pushed events say so.
func TestSubscribeDegradedRescore(t *testing.T) {
	s, base, _ := loadTestServer(t,
		WithRequestTimeout(5*time.Millisecond), WithDegradeBudget(10*time.Second))
	c := client.New(base, nil)
	ctx := context.Background()
	req := client.RecommendRequest{User: 11, Topic: "technology", N: 5, Method: "tr"}
	sub, err := c.Subscribe(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	events, err := c.PollEvents(ctx, sub.ID, 0, "2s")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Degraded {
		t.Fatalf("events = %+v, want one degraded push", events)
	}
	// Differential correctness holds under degradation too: the degraded
	// GET answers from the same landmark computation.
	rec, err := c.Recommend(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Degraded {
		t.Fatal("fresh GET not degraded under the same pressure")
	}
	if !sameIDs(entryIDs(events[0].Top), resultIDs(rec.Results)) {
		t.Errorf("degraded push %v != degraded GET %v", entryIDs(events[0].Top), resultIDs(rec.Results))
	}
}

// TestStatsSubscriptionsBlock: /v1/stats reports the hub block and stays
// consistent under concurrent subscribe/unsubscribe churn (the race
// regression for the stats snapshot).
func TestStatsSubscriptionsBlock(t *testing.T) {
	s, base, _ := loadTestServer(t)
	c := client.New(base, nil)
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Subscriptions == nil {
		t.Fatal("stats missing subscriptions block")
	}
	if st.Subscriptions.Active != 0 || st.Subscriptions.Max == 0 {
		t.Errorf("idle subscriptions block = %+v", st.Subscriptions)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				req := client.RecommendRequest{User: (w*37 + i) % 600, Topic: "technology", N: 3, Method: "landmark"}
				sub, err := c.Subscribe(ctx, req)
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				if _, err := c.Stats(ctx); err != nil {
					t.Errorf("stats: %v", err)
					return
				}
				if err := c.Unsubscribe(ctx, sub.ID); err != nil {
					t.Errorf("unsubscribe: %v", err)
					return
				}
			}
		}(w)
	}
	// A writer keeps batch effects flowing through the hub meanwhile.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := c.Update(ctx, []client.UpdateItem{
				{Src: uint32(i + 20), Dst: uint32(i + 70), Topics: []string{"technology"}},
			}); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	flushHub(t, s)

	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sb := st.Subscriptions
	if sb.Active != 0 || sb.Registered != 32 || sb.Unsubscribed != 32 {
		t.Errorf("post-churn subscriptions block = %+v, want 32 registered, 32 unsubscribed, 0 active", sb)
	}
}

// TestSubscribeLimit: the registration cap answers the uniform 429
// envelope.
func TestSubscribeLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	mgr, _ := testManager(t, reg)
	s := New(mgr, core.DefaultParams().Beta, WithMetrics(reg),
		WithSubscriptions(SubscriptionConfig{MaxSubscriptions: 2}))
	srv := newTestHTTP(t, s)
	c := client.New(srv.URL, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Subscribe(ctx, client.RecommendRequest{User: i, Topic: "technology", N: 3, Method: "landmark"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Subscribe(ctx, client.RecommendRequest{User: 7, Topic: "technology", N: 3, Method: "landmark"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests || apiErr.Code != client.CodeOverloaded {
		t.Fatalf("over-limit subscribe: %v, want 429 %s", err, client.CodeOverloaded)
	}
}

// TestPollEventsLongPollWakes: a poll parked on an idle subscription
// returns as soon as a delta lands, not after the full wait.
func TestPollEventsLongPollWakes(t *testing.T) {
	s, base, _ := loadTestServer(t)
	var mu sync.Mutex
	top := []ranking.Scored{{Node: 42, Score: 2}}
	s.computeHook = func(ctx context.Context, key cacheKey) ([]ranking.Scored, error) {
		mu.Lock()
		defer mu.Unlock()
		return append([]ranking.Scored(nil), top...), nil
	}
	c := client.New(base, nil)
	ctx := context.Background()
	sub, err := c.Subscribe(ctx, client.RecommendRequest{User: 11, Topic: "technology", N: 1, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flushHub(t, s)
	first, err := c.PollEvents(ctx, sub.ID, 0, "2s")
	if err != nil || len(first) != 1 {
		t.Fatalf("initial poll = %v, %v", first, err)
	}

	got := make(chan []client.Event, 1)
	go func() {
		events, perr := c.PollEvents(ctx, sub.ID, first[0].Seq, "30s")
		if perr != nil {
			t.Errorf("parked poll: %v", perr)
		}
		got <- events
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	mu.Lock()
	top = []ranking.Scored{{Node: 77, Score: 9}}
	mu.Unlock()
	if _, err := c.Update(ctx, []client.UpdateItem{{Src: 11, Dst: 592, Topics: []string{"technology"}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case events := <-got:
		if len(events) != 1 || !sameIDs(entryIDs(events[0].Top), []uint32{77}) {
			t.Errorf("woken poll = %+v, want the [77] delta", events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke on the delta")
	}
	_ = fmt.Sprint() // keep fmt for future debug formatting
}
