package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/graph"
)

// The decay sidecar (TRDK) persists the time-decay bookkeeping that a
// TRG2 snapshot cannot carry: the fold reference timestamp the weight
// tables were anchored to, the origin timestamp shared by every
// base-graph edge, and the sparse per-edge event timestamps of streamed
// edges. A manager recovered from snapshot + sidecar + WAL tail
// re-derives exactly the decay weights it held before the crash — the
// sidecar is what makes decayed rankings bit-identical across recovery
// (a WAL-only replay needs no sidecar; every timestamp is in the log).
//
// File layout (little-endian):
//
//	magic u32 = "TRDK", version u32, crc u32, reserved u32
//	ref    i64   fold reference timestamp (Unix ns)
//	origin i64   base-graph edge timestamp (Unix ns)
//	count  u64
//	count × {src u32, dst u32, at i64}
//
// crc is CRC-32C over everything after the reserved word. The file is
// written atomically (temp + rename) alongside the snapshot, so snapshot
// and sidecar publish as a pair.

const (
	decayMagic     = 0x5452444b // "TRDK"
	decayVersion   = 1
	decayHeaderLen = 16 + 8 + 8 + 8
	decayEdgeLen   = 16
	// maxDecayEdges bounds the decode allocation against a corrupt count.
	maxDecayEdges = 1 << 27
)

// DecayEdge is one streamed edge's event timestamp.
type DecayEdge struct {
	Src, Dst graph.NodeID
	At       int64 // Unix ns
}

// DecayState is the decoded sidecar: everything beyond the graph bytes
// that deterministic decay reconstruction needs.
type DecayState struct {
	Ref    int64 // fold reference timestamp (Unix ns)
	Origin int64 // timestamp assigned to base-graph edges (Unix ns)
	Edges  []DecayEdge
}

// WriteDecayFile writes the sidecar atomically (temp file + rename +
// dir fsync), mirroring the snapshot write contract.
func WriteDecayFile(path string, s *DecayState) (int64, error) {
	return atomicWriteFile(path, func(f *os.File) (int64, error) {
		n := decayHeaderLen + len(s.Edges)*decayEdgeLen
		buf := make([]byte, n)
		le := binary.LittleEndian
		le.PutUint32(buf[0:], decayMagic)
		le.PutUint32(buf[4:], decayVersion)
		le.PutUint64(buf[16:], uint64(s.Ref))
		le.PutUint64(buf[24:], uint64(s.Origin))
		le.PutUint64(buf[32:], uint64(len(s.Edges)))
		p := buf[decayHeaderLen:]
		for _, e := range s.Edges {
			le.PutUint32(p[0:], uint32(e.Src))
			le.PutUint32(p[4:], uint32(e.Dst))
			le.PutUint64(p[8:], uint64(e.At))
			p = p[decayEdgeLen:]
		}
		le.PutUint32(buf[8:], crc32.Checksum(buf[16:], castagnoli))
		if _, err := f.Write(buf); err != nil {
			return 0, err
		}
		return int64(n), nil
	})
}

// ReadDecayFile loads and validates a sidecar. A missing file is an
// error the caller distinguishes with os.IsNotExist.
func ReadDecayFile(path string) (*DecayState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeDecay(data)
}

// decodeDecay parses sidecar bytes; any framing or checksum violation is
// an error (the sidecar is written atomically, so unlike the WAL there
// is no torn tail to tolerate).
func decodeDecay(data []byte) (*DecayState, error) {
	le := binary.LittleEndian
	if len(data) < decayHeaderLen || le.Uint32(data[0:]) != decayMagic {
		return nil, fmt.Errorf("store: not a decay sidecar (bad header)")
	}
	if v := le.Uint32(data[4:]); v != decayVersion {
		return nil, fmt.Errorf("store: unsupported decay sidecar version %d", v)
	}
	if got := crc32.Checksum(data[16:], castagnoli); got != le.Uint32(data[8:]) {
		return nil, fmt.Errorf("store: decay sidecar checksum mismatch")
	}
	count := le.Uint64(data[32:])
	if count > maxDecayEdges ||
		uint64(len(data)-decayHeaderLen) != count*decayEdgeLen {
		return nil, fmt.Errorf("store: decay sidecar length does not match edge count")
	}
	s := &DecayState{
		Ref:    int64(le.Uint64(data[16:])),
		Origin: int64(le.Uint64(data[24:])),
		Edges:  make([]DecayEdge, count),
	}
	p := data[decayHeaderLen:]
	for i := range s.Edges {
		s.Edges[i] = DecayEdge{
			Src: graph.NodeID(le.Uint32(p[0:])),
			Dst: graph.NodeID(le.Uint32(p[4:])),
			At:  int64(le.Uint64(p[8:])),
		}
		p = p[decayEdgeLen:]
	}
	return s, nil
}
