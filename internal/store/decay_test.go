package store

import (
	"os"
	"path/filepath"
	"testing"
)

func testDecayState() *DecayState {
	return &DecayState{
		Ref:    1_700_000_000_000_000_000,
		Origin: 1_690_000_000_000_000_000,
		Edges: []DecayEdge{
			{Src: 1, Dst: 2, At: 1_700_000_001_000_000_000},
			{Src: 3, Dst: 0, At: 1_700_000_002_500_000_000},
			{Src: 2, Dst: 4, At: 1_700_000_003_000_000_000},
		},
	}
}

func TestDecaySidecarRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.trdk")
	want := testDecayState()
	if _, err := WriteDecayFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != want.Ref || got.Origin != want.Origin {
		t.Fatalf("scalars: got (%d,%d), want (%d,%d)", got.Ref, got.Origin, want.Ref, want.Origin)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edge count: got %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d: got %+v, want %+v", i, got.Edges[i], want.Edges[i])
		}
	}
}

func TestDecaySidecarEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.trdk")
	if _, err := WriteDecayFile(path, &DecayState{Ref: 7, Origin: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDecayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != 7 || got.Origin != 3 || len(got.Edges) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecaySidecarRejectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.trdk")
	if _, err := WriteDecayFile(path, testDecayState()); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated":    func(b []byte) []byte { return b[:len(b)-3] },
		"flipped body": func(b []byte) []byte { b[decayHeaderLen+5] ^= 0x40; return b },
		"flipped ref":  func(b []byte) []byte { b[17] ^= 0x01; return b },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xff; return b },
	}
	for name, mutate := range cases {
		buf := mutate(append([]byte(nil), clean...))
		if _, err := decodeDecay(buf); err == nil {
			t.Errorf("%s: corrupt sidecar decoded without error", name)
		}
	}
}
