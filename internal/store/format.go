// Package store is the durable storage tier: memory-mappable, zero-copy
// snapshot files for the frozen CSR graph (TRG2) and the landmark lists
// (LMK3), and a CRC-framed write-ahead log of edge-delta batches that
// makes the dynamic update path crash-recoverable.
//
// Both snapshot formats share one framing: a single header page carrying
// the magic, format-specific scalars and a section table, followed by
// page-aligned sections holding the raw little-endian arrays. Alignment
// means an opened file needs no decode step — each section is cast in
// place to its typed slice ([]uint32, []float64, ...) over the mapped
// bytes — so cold-starting a server on a paper-scale graph costs page
// table setup plus an O(n) structural check, not an O(m) rebuild, and
// the graph can exceed RAM (clean pages are just evicted).
//
// The header is always checksummed; each section carries a CRC-32C that
// Open verifies only on request, keeping the default open path
// independent of file size. On a big-endian host (or a corrupt-tolerant
// caller) the same sections are decoded into heap slices instead — the
// format, not the zero-copy trick, is the contract.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"

	"repro/internal/graph"
	"repro/internal/topics"
)

const (
	// pageSize aligns every section so any element type up to 8 bytes is
	// cast-safe at offset 0 of its section and mmap'd sections start on
	// hardware page boundaries.
	pageSize = 4096

	// headerLen is the fixed prefix of every snapshot: one page.
	headerLen = pageSize

	maxInt = int(^uint(0) >> 1)

	snapshotMagic = 0x54524732 // "TRG2"
	landmarkMagic = 0x4c4d4b33 // "LMK3"
	walMagic      = 0x5452574c // "TRWL"

	formatVersion = 1

	// maxSections bounds the section table within the header page.
	maxSections = 16
	// maxMeta is the number of format-specific uint64 scalars a header
	// carries.
	maxMeta = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// nativeLittle reports whether the host is little-endian, the layout the
// formats are defined in. On big-endian hosts sections are decoded, not
// cast.
var nativeLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// section locates one array inside a snapshot file.
type section struct {
	off uint64 // byte offset, page-aligned
	len uint64 // byte length (unpadded)
	crc uint32 // CRC-32C of the section bytes
}

// header is the decoded first page of a snapshot file.
type header struct {
	magic    uint32
	version  uint32
	flags    uint32
	meta     [maxMeta]uint64
	sections []section
}

// Header page layout (little-endian):
//
//	0   magic    uint32
//	4   version  uint32
//	8   flags    uint32
//	12  nSections uint32
//	16  headerCRC uint32  (CRC-32C of the page with this field zeroed)
//	20  reserved  uint32
//	24  meta      maxMeta × uint64
//	88  sections  nSections × {off uint64, len uint64, crc uint32, pad uint32}
const (
	hdrOffMagic    = 0
	hdrOffVersion  = 4
	hdrOffFlags    = 8
	hdrOffNSec     = 12
	hdrOffCRC      = 16
	hdrOffMeta     = 24
	hdrOffSections = hdrOffMeta + maxMeta*8
	sectionEntry   = 24
)

// encode serializes the header into one page with its CRC stamped.
func (h *header) encode() ([]byte, error) {
	if len(h.sections) > maxSections {
		return nil, fmt.Errorf("store: %d sections exceeds %d", len(h.sections), maxSections)
	}
	if hdrOffSections+len(h.sections)*sectionEntry > headerLen {
		return nil, fmt.Errorf("store: header overflows its page")
	}
	buf := make([]byte, headerLen)
	le := binary.LittleEndian
	le.PutUint32(buf[hdrOffMagic:], h.magic)
	le.PutUint32(buf[hdrOffVersion:], h.version)
	le.PutUint32(buf[hdrOffFlags:], h.flags)
	le.PutUint32(buf[hdrOffNSec:], uint32(len(h.sections)))
	for i, m := range h.meta {
		le.PutUint64(buf[hdrOffMeta+8*i:], m)
	}
	for i, s := range h.sections {
		o := hdrOffSections + i*sectionEntry
		le.PutUint64(buf[o:], s.off)
		le.PutUint64(buf[o+8:], s.len)
		le.PutUint32(buf[o+16:], s.crc)
	}
	le.PutUint32(buf[hdrOffCRC:], crc32.Checksum(buf, castagnoli))
	return buf, nil
}

// decodeHeader parses and CRC-verifies a header page.
func decodeHeader(buf []byte, wantMagic uint32) (*header, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("store: file shorter than one header page")
	}
	buf = buf[:headerLen]
	le := binary.LittleEndian
	h := &header{
		magic:   le.Uint32(buf[hdrOffMagic:]),
		version: le.Uint32(buf[hdrOffVersion:]),
		flags:   le.Uint32(buf[hdrOffFlags:]),
	}
	if h.magic != wantMagic {
		return nil, fmt.Errorf("store: bad magic %#x, want %#x", h.magic, wantMagic)
	}
	if h.version != formatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d", h.version)
	}
	want := le.Uint32(buf[hdrOffCRC:])
	scratch := make([]byte, headerLen)
	copy(scratch, buf)
	le.PutUint32(scratch[hdrOffCRC:], 0)
	if got := crc32.Checksum(scratch, castagnoli); got != want {
		return nil, fmt.Errorf("store: header checksum mismatch (%#x vs %#x)", got, want)
	}
	nSec := le.Uint32(buf[hdrOffNSec:])
	if nSec > maxSections {
		return nil, fmt.Errorf("store: implausible section count %d", nSec)
	}
	for i := range h.meta {
		h.meta[i] = le.Uint64(buf[hdrOffMeta+8*i:])
	}
	h.sections = make([]section, nSec)
	for i := range h.sections {
		o := hdrOffSections + i*sectionEntry
		h.sections[i] = section{
			off: le.Uint64(buf[o:]),
			len: le.Uint64(buf[o+8:]),
			crc: le.Uint32(buf[o+16:]),
		}
	}
	return h, nil
}

// mapping is one read-only byte view of a whole file: mmap-backed on unix
// (unmap releases it), heap-backed otherwise.
type mapping struct {
	data  []byte
	unmap func() error
}

// Close releases the mapping; the typed slices cast over it become
// invalid.
func (m *mapping) Close() error {
	if m.unmap != nil {
		err := m.unmap()
		m.unmap = nil
		m.data = nil
		return err
	}
	m.data = nil
	return nil
}

// sectionBytes bounds-checks a section against the mapping and returns
// its bytes.
func (m *mapping) sectionBytes(s section, what string) ([]byte, error) {
	end := s.off + s.len
	if s.off%8 != 0 || end < s.off || end > uint64(len(m.data)) {
		return nil, fmt.Errorf("store: section %s [%d,%d) outside file of %d bytes", what, s.off, end, len(m.data))
	}
	return m.data[s.off:end:end], nil
}

// verifySection checks a section's CRC-32C (the optional deep-integrity
// pass; Open skips it by default to keep cold-start O(n)).
func (m *mapping) verifySection(s section, what string) error {
	b, err := m.sectionBytes(s, what)
	if err != nil {
		return err
	}
	if got := crc32.Checksum(b, castagnoli); got != s.crc {
		return fmt.Errorf("store: section %s checksum mismatch (%#x vs %#x)", what, got, s.crc)
	}
	return nil
}

// --- typed views over section bytes -----------------------------------
//
// Each xSlice helper returns a typed slice over the raw bytes: a zero-copy
// cast on little-endian hosts, a decoded heap copy otherwise. Lengths are
// validated by the callers against the header meta.

func u32Slice(b []byte) []uint32 {
	n := len(b) / 4
	if n == 0 {
		return []uint32{}
	}
	if nativeLittle {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

func u64Slice(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return []uint64{}
	}
	if nativeLittle {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

func f64Slice(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return []float64{}
	}
	if nativeLittle {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func nodeSlice(b []byte) []graph.NodeID {
	u := u32Slice(b)
	if len(u) == 0 {
		return []graph.NodeID{}
	}
	return unsafe.Slice((*graph.NodeID)(unsafe.Pointer(&u[0])), len(u))
}

func setSlice(b []byte) []topics.Set {
	u := u32Slice(b)
	if len(u) == 0 {
		return []topics.Set{}
	}
	return unsafe.Slice((*topics.Set)(unsafe.Pointer(&u[0])), len(u))
}

// --- typed bytes for the write path ------------------------------------

func u32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[4*i:], v)
	}
	return out
}

func u64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], v)
	}
	return out
}

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if nativeLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func nodeBytes(s []graph.NodeID) []byte {
	if len(s) == 0 {
		return nil
	}
	return u32Bytes(unsafe.Slice((*uint32)(unsafe.Pointer(&s[0])), len(s)))
}

func setBytes(s []topics.Set) []byte {
	if len(s) == 0 {
		return nil
	}
	return u32Bytes(unsafe.Slice((*uint32)(unsafe.Pointer(&s[0])), len(s)))
}

// sectionWriter lays sections down one after another, page-padding
// between them and accumulating the table for the header.
type sectionWriter struct {
	w        *bufio.Writer
	off      uint64 // next write offset in the file
	sections []section
	err      error
}

func newSectionWriter(w io.Writer) *sectionWriter {
	return &sectionWriter{w: bufio.NewWriterSize(w, 1<<20), off: headerLen}
}

// add writes one section (already positioned at s.off == current offset)
// and records its table entry.
func (sw *sectionWriter) add(b []byte) {
	if sw.err != nil {
		return
	}
	s := section{off: sw.off, len: uint64(len(b)), crc: crc32.Checksum(b, castagnoli)}
	if _, err := sw.w.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.off += uint64(len(b))
	if pad := (pageSize - sw.off%pageSize) % pageSize; pad != 0 {
		if _, err := sw.w.Write(make([]byte, pad)); err != nil {
			sw.err = err
			return
		}
		sw.off += pad
	}
	sw.sections = append(sw.sections, s)
}

func (sw *sectionWriter) flush() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// writeSnapshotSections writes the body, then seeks back to stamp the
// header: the caller provides the file opened for writing and the header
// skeleton (magic/flags/meta); the section table and CRC are filled here.
func writeSections(f *os.File, h *header, body func(sw *sectionWriter)) (int64, error) {
	if _, err := f.Seek(headerLen, io.SeekStart); err != nil {
		return 0, err
	}
	sw := newSectionWriter(f)
	body(sw)
	if err := sw.flush(); err != nil {
		return int64(sw.off), err
	}
	h.version = formatVersion
	h.sections = sw.sections
	page, err := h.encode()
	if err != nil {
		return int64(sw.off), err
	}
	if _, err := f.WriteAt(page, 0); err != nil {
		return int64(sw.off), err
	}
	return int64(sw.off), nil
}

// atomicWriteFile writes a snapshot through a temp file in the same
// directory and renames it into place, fsyncing file and directory, so a
// crash mid-write can never leave a half-written snapshot under the
// published name.
func atomicWriteFile(path string, write func(f *os.File) (int64, error)) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return n, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return n, err
	}
	return n, syncDir(path)
}

// syncDir fsyncs the directory containing path so a rename survives a
// crash. Filesystems that cannot fsync a directory are tolerated.
func syncDir(path string) error {
	d, err := os.Open(dirOf(path))
	if err != nil {
		return nil //nolint:nilerr // best-effort: the rename itself succeeded
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort, see above
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			if i == 0 {
				return string(path[0])
			}
			return path[:i]
		}
	}
	return "."
}
