package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// snapshotCorpus writes a small real snapshot and returns its bytes plus
// mutated variants (truncated, bit-flipped) as fuzz seeds.
func seedVariants(f *testing.F, clean []byte) {
	f.Helper()
	f.Add(clean)
	f.Add(clean[:len(clean)/2])
	f.Add(clean[:headerLen])
	flip := func(off int) {
		buf := append([]byte(nil), clean...)
		buf[off] ^= 0x80
		f.Add(buf)
	}
	flip(hdrOffNSec)
	flip(hdrOffMeta + 3)
	flip(hdrOffSections + 9)
	flip(headerLen + 5)
	flip(len(clean) - 1)
}

// FuzzOpenSnapshot: a mapped TRG2 image of arbitrary bytes must decode or
// error, never panic or index outside the mapping.
func FuzzOpenSnapshot(f *testing.F) {
	path := filepath.Join(f.TempDir(), "g.trg2")
	if _, err := WriteSnapshotFile(path, testGraph(f), nil); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	seedVariants(f, clean)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, verify := range []bool{false, true} {
			s, err := newSnapshot(&mapping{data: data}, int64(len(data)), OpenOptions{Verify: verify})
			if err != nil {
				continue
			}
			if s.Graph() == nil {
				t.Fatal("nil graph without error")
			}
			// Touch the accepted graph: the structural checks must have
			// made every adjacency access safe.
			g := s.Graph()
			for u := 0; u < g.NumNodes(); u++ {
				g.Out(graph.NodeID(u))
				g.In(graph.NodeID(u))
			}
		}
	})
}

// FuzzOpenLandmarks: same contract for LMK3 images.
func FuzzOpenLandmarks(f *testing.F) {
	path := filepath.Join(f.TempDir(), "l.lmk3")
	if _, err := WriteLandmarksFile(path, testLandmarkStore(f)); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	seedVariants(f, clean)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, verify := range []bool{false, true} {
			ls, err := newLandmarks(&mapping{data: data}, int64(len(data)), OpenOptions{Verify: verify})
			if err != nil {
				continue
			}
			s := ls.Store()
			for _, lm := range s.Landmarks() {
				d := s.Get(lm)
				for i := range d.Topical {
					_ = d.Topical[i].Len()
				}
			}
		}
	})
}

// FuzzDecodeDecay: a decay sidecar of arbitrary bytes must decode or
// error, never panic or over-allocate.
func FuzzDecodeDecay(f *testing.F) {
	path := filepath.Join(f.TempDir(), "g.trdk")
	if _, err := WriteDecayFile(path, &DecayState{
		Ref:    42,
		Origin: 7,
		Edges:  []DecayEdge{{Src: 1, Dst: 2, At: 99}, {Src: 2, Dst: 0, At: 100}},
	}); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-1])
	flip := append([]byte(nil), clean...)
	flip[decayHeaderLen+3] ^= 0x10
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := decodeDecay(data)
		if err != nil {
			return
		}
		if uint64(len(data)-decayHeaderLen) != uint64(len(s.Edges))*decayEdgeLen {
			t.Fatalf("accepted sidecar with %d edges from %d bytes", len(s.Edges), len(data))
		}
	})
}

// FuzzScanWAL: replay over arbitrary bytes must return only fully
// validated batches and a cut offset inside the input.
func FuzzScanWAL(f *testing.F) {
	path := filepath.Join(f.TempDir(), "edges.wal")
	w, _, err := OpenWAL(path, SyncOS)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range walBatches() {
		if err := w.Append(b); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	flip := append([]byte(nil), clean...)
	flip[walHeaderLen+walFrameLen+1] ^= 0x01
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Both frame layouts must hold against arbitrary bytes: the
		// timestamped v2 decoder and the legacy v1 width.
		for _, dlen := range []int{deltaLenV1, deltaLenV2} {
			batches, valid := scanWAL(data, dlen)
			if valid < walHeaderLen || valid > int64(len(data)) {
				// A sub-header file never reaches scanWAL in production
				// (OpenWAL rejects it), but the cut must still be sane.
				if len(data) >= walHeaderLen {
					t.Fatalf("dlen %d: cut offset %d outside [%d,%d]", dlen, valid, walHeaderLen, len(data))
				}
			}
			// Every returned batch must be non-empty: Append refuses empty
			// batches, so a decoded empty one means a forged frame slipped by.
			for i, b := range batches {
				if len(b) == 0 {
					t.Fatalf("dlen %d: batch %d decoded empty", dlen, i)
				}
			}
		}
	})
}
