package store

import (
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/landmark"
)

// LMK3 landmark-store layout, reusing the TRG2 section framing. Header
// meta: [0]=vocabLen, [1]=topN, [2]=numLandmarks, [3]=layoutEpoch,
// [4]=totalEntries. Sections, in file order:
//
//	0 lmIDs    L × u32            landmark ids, insertion order
//	1 lmIters  L × u32            exploration iterations per landmark
//	2 listIdx  (L×(V+1) + 1) × u64  prefix offsets into the entry columns:
//	                               landmark i's topical list t is
//	                               [idx[i×(V+1)+t], idx[i×(V+1)+t+1]),
//	                               its topo list sits at t = V
//	3 nodes    E × u32            recommended-node column
//	4 sigma    E × f64            σ column
//	5 topo     E × f64            topo_β column
//
// Where the legacy LMK2 stream interleaves per-entry (node, σ, topo)
// triplets that must be read element-by-element into heap lists, LMK3
// stores the three columns contiguously: an open casts each column once
// and every list is a subslice — the bulk of a multi-GB store is never
// copied, only the O(L) per-landmark headers go on the heap.
const (
	lmkSecIDs = iota
	lmkSecIters
	lmkSecListIdx
	lmkSecNodes
	lmkSecSigma
	lmkSecTopo
	lmkSections
)

// WriteLandmarks writes s as an LMK3 store into f.
func WriteLandmarks(f *os.File, s *landmark.Store) (int64, error) {
	lms := s.Landmarks()
	vocabLen := s.VocabLen()
	listsPer := vocabLen + 1
	ids := make([]uint32, len(lms))
	iters := make([]uint32, len(lms))
	idx := make([]uint64, len(lms)*listsPer+1)
	var total uint64
	forEachList(s, func(i, li int, l *landmark.List) {
		total += uint64(l.Len())
		idx[i*listsPer+li+1] = total
	})
	nodes := make([]graph.NodeID, 0, total)
	sigma := make([]float64, 0, total)
	topo := make([]float64, 0, total)
	for i, lm := range lms {
		d := s.Get(lm)
		ids[i] = uint32(lm)
		iters[i] = uint32(d.Iterations)
	}
	forEachList(s, func(i, li int, l *landmark.List) {
		nodes = append(nodes, l.Nodes...)
		sigma = append(sigma, l.Sigma...)
		topo = append(topo, l.Topo...)
	})
	h := &header{
		magic: landmarkMagic,
		meta: [maxMeta]uint64{
			uint64(vocabLen),
			uint64(s.TopN()),
			uint64(len(lms)),
			s.LayoutEpoch(),
			total,
		},
	}
	return writeSections(f, h, func(sw *sectionWriter) {
		sw.add(u32Bytes(ids))
		sw.add(u32Bytes(iters))
		sw.add(u64Bytes(idx))
		sw.add(nodeBytes(nodes))
		sw.add(f64Bytes(sigma))
		sw.add(f64Bytes(topo))
	})
}

// forEachList visits every list of every landmark in file order: the
// vocabLen topical lists, then the topo list, per landmark.
func forEachList(s *landmark.Store, f func(lmIdx, listIdx int, l *landmark.List)) {
	for i, lm := range s.Landmarks() {
		d := s.Get(lm)
		for t := range d.Topical {
			f(i, t, &d.Topical[t])
		}
		f(i, len(d.Topical), &d.TopoTop)
	}
}

// WriteLandmarksFile writes an LMK3 store atomically (temp + rename +
// dir fsync).
func WriteLandmarksFile(path string, s *landmark.Store) (int64, error) {
	return atomicWriteFile(path, func(f *os.File) (int64, error) {
		return WriteLandmarks(f, s)
	})
}

// Landmarks is an opened LMK3 file: a landmark.Store whose list columns
// alias the mapping. Close invalidates the store.
type Landmarks struct {
	m     *mapping
	s     *landmark.Store
	bytes int64
}

// OpenLandmarks maps path and wraps its columns as a zero-copy
// *landmark.Store.
func OpenLandmarks(path string, opts OpenOptions) (*Landmarks, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	ls, err := newLandmarks(m, st.Size(), opts)
	if err != nil {
		m.Close() //nolint:errcheck
		return nil, err
	}
	return ls, nil
}

// newLandmarks decodes a mapped LMK3 image.
func newLandmarks(m *mapping, size int64, opts OpenOptions) (*Landmarks, error) {
	h, err := decodeHeader(m.data, landmarkMagic)
	if err != nil {
		return nil, err
	}
	if len(h.sections) < lmkSections {
		return nil, fmt.Errorf("store: landmark store has %d sections, want %d", len(h.sections), lmkSections)
	}
	vocabLen, topN, numLm, layoutEpoch, total := h.meta[0], h.meta[1], h.meta[2], h.meta[3], h.meta[4]
	if vocabLen == 0 || vocabLen > 1024 {
		return nil, fmt.Errorf("store: implausible vocabulary size %d", vocabLen)
	}
	if numLm > 1<<24 || total > 1<<40 {
		return nil, fmt.Errorf("store: implausible store shape (%d landmarks, %d entries)", numLm, total)
	}
	listsPer := vocabLen + 1
	nIdx := numLm*listsPer + 1
	want := []struct {
		sec   int
		bytes uint64
		what  string
	}{
		{lmkSecIDs, numLm * 4, "lmIDs"},
		{lmkSecIters, numLm * 4, "lmIters"},
		{lmkSecListIdx, nIdx * 8, "listIdx"},
		{lmkSecNodes, total * 4, "nodes"},
		{lmkSecSigma, total * 8, "sigma"},
		{lmkSecTopo, total * 8, "topo"},
	}
	raw := make(map[int][]byte, len(want))
	for _, w := range want {
		b, err := m.sectionBytes(h.sections[w.sec], w.what)
		if err != nil {
			return nil, err
		}
		if uint64(len(b)) != w.bytes {
			return nil, fmt.Errorf("store: section %s holds %d bytes, want %d", w.what, len(b), w.bytes)
		}
		raw[w.sec] = b
	}
	if opts.Verify {
		names := []string{"lmIDs", "lmIters", "listIdx", "nodes", "sigma", "topo"}
		for i, s := range h.sections[:lmkSections] {
			if err := m.verifySection(s, names[i]); err != nil {
				return nil, err
			}
		}
	}
	ids := u32Slice(raw[lmkSecIDs])
	iters := u32Slice(raw[lmkSecIters])
	idx := u64Slice(raw[lmkSecListIdx])
	nodes := nodeSlice(raw[lmkSecNodes])
	sigma := f64Slice(raw[lmkSecSigma])
	topo := f64Slice(raw[lmkSecTopo])

	if idx[0] != 0 || idx[len(idx)-1] != total {
		return nil, fmt.Errorf("store: list index does not span the entry columns")
	}
	s := landmark.NewStore(int(vocabLen), int(topN))
	s.SetLayoutEpoch(layoutEpoch)
	for i := uint64(0); i < numLm; i++ {
		d := &landmark.Data{
			Landmark:   graph.NodeID(ids[i]),
			Iterations: int(iters[i]),
			Topical:    make([]landmark.List, vocabLen),
		}
		for li := uint64(0); li <= vocabLen; li++ {
			k := i*listsPer + li
			lo, hi := idx[k], idx[k+1]
			if hi < lo || hi > total {
				return nil, fmt.Errorf("store: list index corrupt at landmark %d list %d", i, li)
			}
			if hi-lo > topN {
				return nil, fmt.Errorf("store: list of landmark %d exceeds topN %d", ids[i], topN)
			}
			l := landmark.List{
				Nodes: nodes[lo:hi:hi],
				Sigma: sigma[lo:hi:hi],
				Topo:  topo[lo:hi:hi],
			}
			if opts.Verify && !sortedBySigma(l.Sigma) {
				return nil, fmt.Errorf("store: list %d of landmark %d not ranked", li, ids[i])
			}
			if li < vocabLen {
				d.Topical[li] = l
			} else {
				d.TopoTop = l
			}
		}
		if err := s.Put(d); err != nil {
			return nil, err
		}
	}
	return &Landmarks{m: m, s: s, bytes: size}, nil
}

// sortedBySigma mirrors the LMK2 reader's ranking check.
func sortedBySigma(s []float64) bool {
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1] {
			return false
		}
	}
	return true
}

// Store returns the mapping-backed landmark store. It stays valid until
// Close.
func (l *Landmarks) Store() *landmark.Store { return l.s }

// Bytes returns the file size.
func (l *Landmarks) Bytes() int64 { return l.bytes }

// Close unmaps the store; its lists must not be used afterwards.
func (l *Landmarks) Close() error {
	l.s = nil
	return l.m.Close()
}
