//go:build !unix

package store

import (
	"fmt"
	"io"
	"os"
)

// mapFile falls back to reading the whole file into the heap on platforms
// without a usable mmap: the zero-copy section casts still work (they only
// need an aligned byte slice), the graph just cannot exceed RAM.
func mapFile(f *os.File, size int64) (*mapping, error) {
	if size < 0 || size > int64(maxInt) {
		return nil, fmt.Errorf("store: cannot load %d bytes", size)
	}
	// Heap slices this large are at least 8-byte aligned, so the
	// page-aligned section offsets keep every typed cast aligned.
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("store: reading file: %w", err)
	}
	return &mapping{data: buf}, nil
}
