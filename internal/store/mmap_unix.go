//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The mapping is shared, so the
// pages are backed by the page cache: a snapshot larger than RAM pages in
// on demand and clean pages are simply evicted under pressure.
func mapFile(f *os.File, size int64) (*mapping, error) {
	if size == 0 {
		return &mapping{}, nil
	}
	if size < 0 || size > int64(maxInt) {
		return nil, fmt.Errorf("store: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	return &mapping{data: data, unmap: func() error { return syscall.Munmap(data) }}, nil
}
