package store

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/topics"
)

// TRG2 snapshot layout. Header meta: [0]=numNodes, [1]=numEdges,
// [2]=vocabLen. Flag bit 0 marks an embedded layout permutation.
// Sections, in file order:
//
//	0 vocab       count u32, then per topic: nameLen u16 + name bytes
//	1 nodeTopics  n × u32 (labelN bitmasks)
//	2 outStart    (n+1) × u32
//	3 outDst      m × u32
//	4 outLbl      m × u32
//	5 inStart     (n+1) × u32
//	6 inSrc       m × u32
//	7 inLbl       m × u32
//	8 perm        n × u32 external→internal (only with flag bit 0)
//
// Sections 1–8 are raw little-endian arrays, page-aligned, so an open
// casts them in place over the mapping; only the tiny vocab blob is
// decoded onto the heap.
const (
	secVocab = iota
	secNodeTopics
	secOutStart
	secOutDst
	secOutLbl
	secInStart
	secInSrc
	secInLbl
	secPerm
	snapshotSections = secPerm // mandatory count; perm is optional

	flagHasPerm = 1 << 0
)

// WriteSnapshot writes g (and, when non-nil, its layout permutation) as a
// TRG2 snapshot into f, returning the bytes written. The file is laid
// down body-first; the checksummed header is stamped last, so a torn
// write is detected by the header CRC.
func WriteSnapshot(f *os.File, g *graph.Graph, perm *graph.Permutation) (int64, error) {
	if perm != nil && perm.Len() != g.NumNodes() {
		return 0, fmt.Errorf("store: permutation over %d nodes, graph has %d", perm.Len(), g.NumNodes())
	}
	d := g.CSR()
	h := &header{
		magic: snapshotMagic,
		meta: [maxMeta]uint64{
			uint64(g.NumNodes()),
			uint64(g.NumEdges()),
			uint64(g.Vocabulary().Len()),
		},
	}
	if perm != nil {
		h.flags |= flagHasPerm
	}
	return writeSections(f, h, func(sw *sectionWriter) {
		sw.add(encodeVocab(g.Vocabulary()))
		sw.add(setBytes(d.NodeTopics))
		sw.add(u32Bytes(d.OutStart))
		sw.add(nodeBytes(d.OutDst))
		sw.add(setBytes(d.OutLbl))
		sw.add(u32Bytes(d.InStart))
		sw.add(nodeBytes(d.InSrc))
		sw.add(setBytes(d.InLbl))
		if perm != nil {
			sw.add(nodeBytes(perm.Forward()))
		}
	})
}

// WriteSnapshotFile writes a TRG2 snapshot atomically: temp file in the
// same directory, fsync, rename, directory fsync. A reader (or a crash)
// can never observe a partial snapshot under path.
func WriteSnapshotFile(path string, g *graph.Graph, perm *graph.Permutation) (int64, error) {
	return atomicWriteFile(path, func(f *os.File) (int64, error) {
		return WriteSnapshot(f, g, perm)
	})
}

// OpenOptions tunes snapshot opening.
type OpenOptions struct {
	// Verify runs the deep integrity pass: every section's CRC-32C plus
	// the O(m) CSR content invariants. Off by default — the open path
	// then touches only the header and the O(n) row-start arrays, which
	// is what makes cold starts milliseconds at paper scale.
	Verify bool
}

// Snapshot is an opened TRG2 file: a frozen graph whose CSR arrays alias
// the mapping. Close invalidates the graph (and permutation).
type Snapshot struct {
	m       *mapping
	g       *graph.Graph
	perm    graph.Permutation
	hasPerm bool
	bytes   int64
}

// OpenSnapshot maps path and wraps its sections as a zero-copy
// *graph.Graph without materializing the heap CSR.
func OpenSnapshot(path string, opts OpenOptions) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	s, err := newSnapshot(m, st.Size(), opts)
	if err != nil {
		m.Close() //nolint:errcheck
		return nil, err
	}
	return s, nil
}

// newSnapshot decodes a mapped TRG2 image (split out so fuzzing can drive
// it with in-memory corpora).
func newSnapshot(m *mapping, size int64, opts OpenOptions) (*Snapshot, error) {
	h, err := decodeHeader(m.data, snapshotMagic)
	if err != nil {
		return nil, err
	}
	nSec := snapshotSections
	if h.flags&flagHasPerm != 0 {
		nSec++
	}
	if len(h.sections) < nSec {
		return nil, fmt.Errorf("store: snapshot has %d sections, want %d", len(h.sections), nSec)
	}
	n, mEdges, vocabLen := h.meta[0], h.meta[1], h.meta[2]
	if n == 0 || n > 1<<31 {
		return nil, fmt.Errorf("store: implausible node count %d", n)
	}
	if vocabLen == 0 || vocabLen > uint64(topics.MaxTopics) {
		return nil, fmt.Errorf("store: implausible vocabulary size %d", vocabLen)
	}
	if mEdges > 1<<40 {
		return nil, fmt.Errorf("store: implausible edge count %d", mEdges)
	}
	// Section lengths must match the header scalars exactly before any
	// cast; a forged header cannot make a slice outrun the mapping.
	want := []struct {
		sec   int
		bytes uint64
		what  string
	}{
		{secNodeTopics, n * 4, "nodeTopics"},
		{secOutStart, (n + 1) * 4, "outStart"},
		{secOutDst, mEdges * 4, "outDst"},
		{secOutLbl, mEdges * 4, "outLbl"},
		{secInStart, (n + 1) * 4, "inStart"},
		{secInSrc, mEdges * 4, "inSrc"},
		{secInLbl, mEdges * 4, "inLbl"},
	}
	raw := make(map[int][]byte, len(want)+2)
	for _, w := range want {
		b, err := m.sectionBytes(h.sections[w.sec], w.what)
		if err != nil {
			return nil, err
		}
		if uint64(len(b)) != w.bytes {
			return nil, fmt.Errorf("store: section %s holds %d bytes, want %d", w.what, len(b), w.bytes)
		}
		raw[w.sec] = b
	}
	vb, err := m.sectionBytes(h.sections[secVocab], "vocab")
	if err != nil {
		return nil, err
	}
	vocab, err := decodeVocab(vb, int(vocabLen))
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		names := []string{"vocab", "nodeTopics", "outStart", "outDst", "outLbl", "inStart", "inSrc", "inLbl", "perm"}
		for i, s := range h.sections[:nSec] {
			if err := m.verifySection(s, names[i]); err != nil {
				return nil, err
			}
		}
	}
	g, err := graph.NewFromCSR(vocab, graph.CSRData{
		NodeTopics: setSlice(raw[secNodeTopics]),
		OutStart:   u32Slice(raw[secOutStart]),
		OutDst:     nodeSlice(raw[secOutDst]),
		OutLbl:     setSlice(raw[secOutLbl]),
		InStart:    u32Slice(raw[secInStart]),
		InSrc:      nodeSlice(raw[secInSrc]),
		InLbl:      setSlice(raw[secInLbl]),
	}, opts.Verify)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{m: m, g: g, bytes: size}
	if h.flags&flagHasPerm != 0 {
		pb, err := m.sectionBytes(h.sections[secPerm], "perm")
		if err != nil {
			return nil, err
		}
		if uint64(len(pb)) != n*4 {
			return nil, fmt.Errorf("store: perm section holds %d bytes, want %d", len(pb), n*4)
		}
		// PermutationFromForward validates bijectivity and copies: the
		// permutation is O(n) heap either way, and validation is cheap
		// relative to the layouts it gates.
		perm, err := graph.PermutationFromForward(nodeSlice(pb))
		if err != nil {
			return nil, fmt.Errorf("store: embedded permutation: %w", err)
		}
		snap.perm, snap.hasPerm = perm, true
	}
	return snap, nil
}

// Graph returns the snapshot-backed frozen graph. It stays valid until
// Close.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Permutation returns the embedded cache-layout permutation, if the
// snapshot carries one.
func (s *Snapshot) Permutation() (graph.Permutation, bool) { return s.perm, s.hasPerm }

// Bytes returns the snapshot file size.
func (s *Snapshot) Bytes() int64 { return s.bytes }

// Close unmaps the snapshot. The graph (and anything still aliasing its
// CSR) must not be used afterwards.
func (s *Snapshot) Close() error {
	s.g = nil
	return s.m.Close()
}

// encodeVocab serializes a vocabulary blob: count, then len-prefixed
// names.
func encodeVocab(v *topics.Vocabulary) []byte {
	names := v.Names()
	out := make([]byte, 4, 4+16*len(names))
	binary.LittleEndian.PutUint32(out, uint32(len(names)))
	for _, n := range names {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(n)))
		out = append(out, l[:]...)
		out = append(out, n...)
	}
	return out
}

// decodeVocab parses a vocabulary blob, cross-checking the header's
// topic count.
func decodeVocab(b []byte, wantLen int) (*topics.Vocabulary, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("store: vocab section truncated")
	}
	count := binary.LittleEndian.Uint32(b)
	if int(count) != wantLen {
		return nil, fmt.Errorf("store: vocab holds %d names, header says %d", count, wantLen)
	}
	b = b[4:]
	names := make([]string, count)
	for i := range names {
		if len(b) < 2 {
			return nil, fmt.Errorf("store: vocab name %d truncated", i)
		}
		l := int(binary.LittleEndian.Uint16(b))
		b = b[2:]
		if len(b) < l {
			return nil, fmt.Errorf("store: vocab name %d truncated", i)
		}
		names[i] = string(b[:l])
		b = b[l:]
	}
	v, err := topics.NewVocabulary(names)
	if err != nil {
		return nil, fmt.Errorf("store: stored vocabulary invalid: %w", err)
	}
	return v, nil
}
