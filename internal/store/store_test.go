package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/topics"
)

// requireViewsEqual compares two graph views accessor by accessor — the
// round-trip contract a snapshot must honor exactly.
func requireViewsEqual(t testing.TB, want, got graph.View) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("NumNodes: want %d, got %d", want.NumNodes(), got.NumNodes())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("NumEdges: want %d, got %d", want.NumEdges(), got.NumEdges())
	}
	if wn, gn := want.Vocabulary().Names(), got.Vocabulary().Names(); len(wn) != len(gn) {
		t.Fatalf("vocab: want %d topics, got %d", len(wn), len(gn))
	} else {
		for i := range wn {
			if wn[i] != gn[i] {
				t.Fatalf("vocab[%d]: want %q, got %q", i, wn[i], gn[i])
			}
		}
	}
	for u := 0; u < want.NumNodes(); u++ {
		id := graph.NodeID(u)
		if want.NodeTopics(id) != got.NodeTopics(id) {
			t.Fatalf("NodeTopics(%d) differ", u)
		}
		wd, wl := want.Out(id)
		gd, gl := got.Out(id)
		if len(wd) != len(gd) {
			t.Fatalf("Out(%d): want %d edges, got %d", u, len(wd), len(gd))
		}
		for i := range wd {
			if wd[i] != gd[i] || wl[i] != gl[i] {
				t.Fatalf("Out(%d)[%d]: want (%d,%v), got (%d,%v)", u, i, wd[i], wl[i], gd[i], gl[i])
			}
		}
		ws, wl2 := want.In(id)
		gs, gl2 := got.In(id)
		if len(ws) != len(gs) {
			t.Fatalf("In(%d): want %d edges, got %d", u, len(ws), len(gs))
		}
		for i := range ws {
			if ws[i] != gs[i] || wl2[i] != gl2[i] {
				t.Fatalf("In(%d)[%d]: want (%d,%v), got (%d,%v)", u, i, ws[i], wl2[i], gs[i], gl2[i])
			}
		}
	}
}

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.RandomWith(80, 700, 42).Graph
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.trg2")
	if _, err := WriteSnapshotFile(path, g, nil); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	requireViewsEqual(t, g, s.Graph())
	if _, ok := s.Permutation(); ok {
		t.Error("snapshot without perm reports one")
	}
}

func TestSnapshotRoundTripWithPerm(t *testing.T) {
	g := testGraph(t)
	fwd := make([]graph.NodeID, g.NumNodes())
	for i := range fwd {
		fwd[i] = graph.NodeID(len(fwd) - 1 - i)
	}
	perm, err := graph.PermutationFromForward(fwd)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.trg2")
	if _, err := WriteSnapshotFile(path, g, &perm); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	requireViewsEqual(t, g, s.Graph())
	got, ok := s.Permutation()
	if !ok {
		t.Fatal("embedded permutation missing")
	}
	for i := range fwd {
		if got.Apply(graph.NodeID(i)) != fwd[i] {
			t.Fatalf("perm[%d]: want %d, got %d", i, fwd[i], got.Apply(graph.NodeID(i)))
		}
	}
}

// TestSnapshotRejectsCorruption flips one byte at a sweep of offsets and
// requires every corrupted image to either fail Verify-open or decode
// without panicking — never crash.
func TestSnapshotRejectsCorruption(t *testing.T) {
	g := testGraph(t)
	path := filepath.Join(t.TempDir(), "g.trg2")
	if _, err := WriteSnapshotFile(path, g, nil); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A pristine copy opens.
	if _, err := newSnapshot(&mapping{data: append([]byte(nil), clean...)}, int64(len(clean)), OpenOptions{Verify: true}); err != nil {
		t.Fatalf("pristine image rejected: %v", err)
	}
	for off := 0; off < len(clean); off += 97 {
		buf := append([]byte(nil), clean...)
		buf[off] ^= 0x40
		s, err := newSnapshot(&mapping{data: buf}, int64(len(buf)), OpenOptions{Verify: true})
		if err == nil {
			// The flip landed in page padding; the image is still intact.
			s.Close() //nolint:errcheck
		}
	}
	// Header corruption must always be fatal, even without Verify.
	buf := append([]byte(nil), clean...)
	buf[hdrOffCRC] ^= 0xff
	if _, err := newSnapshot(&mapping{data: buf}, int64(len(buf)), OpenOptions{}); err == nil {
		t.Fatal("corrupt header CRC accepted")
	}
	// Truncations that cut into section data must be rejected. (Chopping
	// only the final page padding still leaves a valid image, so the last
	// probe point is just shy of the final section's end.)
	for _, n := range []int{0, 1, headerLen - 1, headerLen, headerLen + 1, len(clean) / 2} {
		if _, err := newSnapshot(&mapping{data: clean[:n]}, int64(n), OpenOptions{}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func testLandmarkStore(t testing.TB) *landmark.Store {
	t.Helper()
	const vocabLen, topN = 3, 8
	s := landmark.NewStore(vocabLen, topN)
	s.SetLayoutEpoch(7)
	for _, lm := range []graph.NodeID{4, 9, 17} {
		d := &landmark.Data{Landmark: lm, Iterations: 3, Topical: make([]landmark.List, vocabLen)}
		for tpc := 0; tpc < vocabLen; tpc++ {
			n := (int(lm)+tpc)%topN + 1
			l := landmark.List{}
			for i := 0; i < n; i++ {
				l.Nodes = append(l.Nodes, graph.NodeID(100+i))
				l.Sigma = append(l.Sigma, 1.0/float64(i+1))
				l.Topo = append(l.Topo, 0.5/float64(i+1))
			}
			d.Topical[tpc] = l
		}
		d.TopoTop = landmark.List{
			Nodes: []graph.NodeID{200, 201},
			Sigma: []float64{0.9, 0.8},
			Topo:  []float64{0.7, 0.6},
		}
		if err := s.Put(d); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestLandmarksRoundTrip(t *testing.T) {
	s := testLandmarkStore(t)
	path := filepath.Join(t.TempDir(), "l.lmk3")
	if _, err := WriteLandmarksFile(path, s); err != nil {
		t.Fatal(err)
	}
	ls, err := OpenLandmarks(path, OpenOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	got := ls.Store()
	if got.VocabLen() != s.VocabLen() || got.TopN() != s.TopN() || got.LayoutEpoch() != s.LayoutEpoch() {
		t.Fatalf("store shape differs: %d/%d/%d vs %d/%d/%d",
			got.VocabLen(), got.TopN(), got.LayoutEpoch(), s.VocabLen(), s.TopN(), s.LayoutEpoch())
	}
	wantLms := s.Landmarks()
	gotLms := got.Landmarks()
	if len(wantLms) != len(gotLms) {
		t.Fatalf("landmark count: want %d, got %d", len(wantLms), len(gotLms))
	}
	for _, lm := range wantLms {
		wd, gd := s.Get(lm), got.Get(lm)
		if gd == nil {
			t.Fatalf("landmark %d missing", lm)
		}
		if wd.Iterations != gd.Iterations {
			t.Fatalf("landmark %d iterations: want %d, got %d", lm, wd.Iterations, gd.Iterations)
		}
		lists := func(d *landmark.Data) []landmark.List {
			return append(append([]landmark.List{}, d.Topical...), d.TopoTop)
		}
		wl, gl := lists(wd), lists(gd)
		for li := range wl {
			if len(wl[li].Nodes) != len(gl[li].Nodes) {
				t.Fatalf("landmark %d list %d: want %d entries, got %d", lm, li, len(wl[li].Nodes), len(gl[li].Nodes))
			}
			for i := range wl[li].Nodes {
				if wl[li].Nodes[i] != gl[li].Nodes[i] ||
					wl[li].Sigma[i] != gl[li].Sigma[i] ||
					wl[li].Topo[i] != gl[li].Topo[i] {
					t.Fatalf("landmark %d list %d entry %d differs", lm, li, i)
				}
			}
		}
	}
}

func TestLandmarksRejectsCorruption(t *testing.T) {
	s := testLandmarkStore(t)
	path := filepath.Join(t.TempDir(), "l.lmk3")
	if _, err := WriteLandmarksFile(path, s); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(clean); off += 53 {
		buf := append([]byte(nil), clean...)
		buf[off] ^= 0x10
		ls, err := newLandmarks(&mapping{data: buf}, int64(len(buf)), OpenOptions{Verify: true})
		if err == nil {
			ls.Close() //nolint:errcheck
		}
	}
	for _, n := range []int{0, headerLen - 2, headerLen, len(clean) / 2} {
		if _, err := newLandmarks(&mapping{data: clean[:n]}, int64(n), OpenOptions{}); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

func walBatches() [][]EdgeDelta {
	return [][]EdgeDelta{
		{{Src: 1, Dst: 2, Label: topics.NewSet(0), Add: true}},
		{
			{Src: 3, Dst: 4, Label: topics.NewSet(1), Add: true},
			{Src: 1, Dst: 2, Label: 0, Add: false},
		},
		{{Src: 7, Dst: 8, Label: topics.NewSet(0, 1), Add: true}},
	}
}

func requireBatchesEqual(t testing.TB, want, got [][]EdgeDelta) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("batch count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("batch %d: want %d deltas, got %d", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("batch %d delta %d: want %+v, got %+v", i, j, want[i][j], got[i][j])
			}
		}
	}
}

func TestWALAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.wal")
	w, batches, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 0 {
		t.Fatalf("fresh WAL replayed %d batches", len(batches))
	}
	want := walBatches()
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if w.Records() != uint64(len(want)) {
		t.Fatalf("records = %d, want %d", w.Records(), len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, err := OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	requireBatchesEqual(t, want, got)
	// Appending after a reopen continues the sequence.
	extra := []EdgeDelta{{Src: 9, Dst: 10, Label: topics.NewSet(1), Add: true}}
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	requireBatchesEqual(t, append(want, extra), got)
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.wal")
	w, _, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	want := walBatches()
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	full := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop the last record in half.
	if err := os.Truncate(path, full-9); err != nil {
		t.Fatal(err)
	}
	w2, got, err := OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	requireBatchesEqual(t, want[:len(want)-1], got)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= full-9 {
		t.Fatalf("torn tail not truncated: %d bytes", st.Size())
	}
}

func TestWALCorruptRecordDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.wal")
	w, _, err := OpenWAL(path, SyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	want := walBatches()
	offsets := []int64{w.Size()}
	for _, b := range want {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the second record: it and everything
	// after must be dropped; the first record must survive.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[1]+walFrameLen+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, got, err := OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	requireBatchesEqual(t, want[:1], got)
}

func TestWALTruncateResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.wal")
	w, _, err := OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range walBatches() {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != walHeaderLen || w.Records() != 0 {
		t.Fatalf("after truncate: size=%d records=%d", w.Size(), w.Records())
	}
	// The log still works: append and reopen from scratch.
	one := walBatches()[:1]
	if err := w.Append(one[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenWAL(path, SyncOS)
	if err != nil {
		t.Fatal(err)
	}
	requireBatchesEqual(t, one, got)
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.wal")
	if err := os.WriteFile(path, []byte("definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path, SyncOS); err == nil {
		t.Fatal("foreign file accepted as WAL")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"os", SyncOS, true},
		{"always", SyncAlways, true},
		{"never", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
}
