package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/topics"
)

// The write-ahead log makes edge-delta batches durable before they apply
// as overlays: on a crash, the last snapshot plus a WAL replay
// reconstructs the exact pre-crash graph (and therefore, by the overlay
// bit-identity contract, the exact pre-crash rankings).
//
// File layout (little-endian):
//
//	magic u32 = "TRWL", version u32
//	records, back to back:
//	    payloadLen u32
//	    crc        u32   CRC-32C over seq ++ payload
//	    seq        u64   record index, contiguous from 0
//	    payload:   count u32, then count deltas:
//	        version 1: {src u32, dst u32, label u32, add u8}
//	        version 2: {src u32, dst u32, label u32, add u8, at i64}
//
// Version 2 frames stamp every delta with its event time (Unix
// nanoseconds), which the streaming tier's time-decayed weights need for
// replay-correct decay: a recovered manager re-derives each edge's decay
// weight from the logged timestamp, not from the replay wall clock. New
// logs are created at version 2; version-1 logs stay readable (their
// deltas replay unstamped) and keep appending version-1 frames so one
// file never mixes layouts.
//
// Records are self-checking: replay stops at the first frame whose CRC,
// sequence number or length does not hold and truncates the file there —
// a torn tail from a crash mid-append costs the torn record only, never
// an error. Truncate (after a compaction published a fresh snapshot)
// resets the log to its header.

// SyncPolicy picks the WAL durability/throughput trade-off.
type SyncPolicy int

const (
	// SyncOS leaves flushing to the OS page cache: batches can be lost
	// in a power failure, never corrupted (the CRC framing drops a torn
	// tail on replay).
	SyncOS SyncPolicy = iota
	// SyncAlways fsyncs after every append: an acknowledged batch
	// survives power loss.
	SyncAlways
)

// String names the policy (flag value syntax).
func (p SyncPolicy) String() string {
	if p == SyncAlways {
		return "always"
	}
	return "os"
}

// ParseSyncPolicy parses the -wal-sync flag syntax.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "os":
		return SyncOS, nil
	case "always":
		return SyncAlways, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (os, always)", s)
}

// EdgeDelta is one durable edge change: the WAL's unit of payload,
// mirroring dynamic.Update without importing it (the dependency points
// the other way). At is the event's Unix-nanosecond timestamp (0 =
// unstamped, e.g. a delta recovered from a version-1 log).
type EdgeDelta struct {
	Src, Dst graph.NodeID
	Label    topics.Set
	Add      bool
	At       int64
}

const (
	walHeaderLen = 8
	walFrameLen  = 16 // payloadLen + crc + seq
	deltaLenV1   = 13 // src + dst + label + add
	deltaLenV2   = 21 // src + dst + label + add + at
	// walVersion is the layout written into new logs (timestamped
	// deltas); version-1 files remain readable and appendable.
	walVersion = 2
	// maxWalPayload bounds one record so a corrupt length cannot force a
	// giant allocation on replay.
	maxWalPayload = 1 << 28
)

// WAL is an open write-ahead log. Append/Truncate are not safe for
// concurrent use with each other — the dynamic manager serializes them
// under its own lock — but the size/records accessors are atomic so a
// metrics exposition can read them while an append is in flight.
type WAL struct {
	f       *os.File
	policy  SyncPolicy
	dlen    int // per-delta encoding width (deltaLenV1 or deltaLenV2)
	size    atomic.Int64  // current valid length (next append offset)
	seq     atomic.Uint64 // next record sequence number
	buf     []byte        // reused append encoding buffer
	appends atomic.Uint64
	bytes   atomic.Uint64
}

// Timestamped reports whether the log's layout carries per-delta event
// timestamps (version 2). Decay-correct recovery requires it.
func (w *WAL) Timestamped() bool { return w.dlen == deltaLenV2 }

// OpenWAL opens (creating if absent) the log at path and replays its
// records: the returned batches are every durable batch in append order,
// already validated. A torn or corrupt tail is truncated away; the WAL
// is positioned to append after the last valid record. The recovered
// byte count reports how much of the file survived validation.
func OpenWAL(path string, policy SyncPolicy) (w *WAL, batches [][]EdgeDelta, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		if err != nil {
			f.Close() //nolint:errcheck
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() == 0 {
		var hdr [walHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:], walMagic)
		binary.LittleEndian.PutUint32(hdr[4:], walVersion)
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, nil, err
		}
		w = &WAL{f: f, policy: policy, dlen: deltaLenV2}
		w.size.Store(walHeaderLen)
		return w, nil, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < walHeaderLen ||
		binary.LittleEndian.Uint32(data[0:]) != walMagic {
		return nil, nil, fmt.Errorf("store: %s is not a WAL (bad header)", path)
	}
	dlen := 0
	switch binary.LittleEndian.Uint32(data[4:]) {
	case 1:
		dlen = deltaLenV1
	case walVersion:
		dlen = deltaLenV2
	default:
		return nil, nil, fmt.Errorf("store: %s is not a WAL (bad header)", path)
	}
	batches, valid := scanWAL(data, dlen)
	if valid < int64(len(data)) {
		// Torn or corrupt tail: drop it so the next append starts at the
		// last record boundary the CRCs vouch for.
		if err := f.Truncate(valid); err != nil {
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		return nil, nil, err
	}
	w = &WAL{f: f, policy: policy, dlen: dlen}
	w.size.Store(valid)
	w.seq.Store(uint64(len(batches)))
	return w, batches, nil
}

// scanWAL walks records from the header on, returning the decoded
// batches and the byte offset of the first frame that fails validation
// (== len(data) when the whole file holds). dlen is the per-delta width
// of the file's version.
func scanWAL(data []byte, dlen int) (batches [][]EdgeDelta, valid int64) {
	off := int64(walHeaderLen)
	for {
		if int64(len(data))-off < walFrameLen {
			return batches, off
		}
		le := binary.LittleEndian
		plen := le.Uint32(data[off:])
		crc := le.Uint32(data[off+4:])
		seq := le.Uint64(data[off+8:])
		if plen > maxWalPayload || int64(len(data))-off-walFrameLen < int64(plen) {
			return batches, off
		}
		if seq != uint64(len(batches)) {
			return batches, off
		}
		frame := data[off+8 : off+walFrameLen+int64(plen)] // seq ++ payload
		if crc32.Checksum(frame, castagnoli) != crc {
			return batches, off
		}
		batch, ok := decodeBatch(data[off+walFrameLen:off+walFrameLen+int64(plen)], dlen)
		if !ok {
			return batches, off
		}
		batches = append(batches, batch)
		off += walFrameLen + int64(plen)
	}
}

// decodeBatch parses one record payload of the given per-delta width.
func decodeBatch(p []byte, dlen int) ([]EdgeDelta, bool) {
	if len(p) < 4 {
		return nil, false
	}
	count := binary.LittleEndian.Uint32(p)
	// Append never writes an empty batch, so a zero count is forgery.
	if count == 0 || uint64(len(p)-4) != uint64(count)*uint64(dlen) {
		return nil, false
	}
	p = p[4:]
	out := make([]EdgeDelta, count)
	for i := range out {
		le := binary.LittleEndian
		out[i] = EdgeDelta{
			Src:   graph.NodeID(le.Uint32(p[0:])),
			Dst:   graph.NodeID(le.Uint32(p[4:])),
			Label: topics.Set(le.Uint32(p[8:])),
			Add:   p[12] != 0,
		}
		if p[12] > 1 {
			return nil, false
		}
		if dlen == deltaLenV2 {
			out[i].At = int64(le.Uint64(p[13:]))
		}
		p = p[dlen:]
	}
	return out, true
}

// Append encodes batch as one CRC-framed record and writes it at the
// log's tail, fsyncing per the policy. The record is durable (per the
// policy) when Append returns; the caller applies the batch only
// afterwards — write-ahead, so a crash between the two replays it.
func (w *WAL) Append(batch []EdgeDelta) error {
	if len(batch) == 0 {
		return nil
	}
	plen := 4 + len(batch)*w.dlen
	need := walFrameLen + plen
	if plen > maxWalPayload {
		return fmt.Errorf("store: batch of %d deltas exceeds the record bound", len(batch))
	}
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	le := binary.LittleEndian
	le.PutUint32(buf[0:], uint32(plen))
	le.PutUint64(buf[8:], w.seq.Load())
	le.PutUint32(buf[16:], uint32(len(batch)))
	p := buf[20:]
	for _, d := range batch {
		le.PutUint32(p[0:], uint32(d.Src))
		le.PutUint32(p[4:], uint32(d.Dst))
		le.PutUint32(p[8:], uint32(d.Label))
		if d.Add {
			p[12] = 1
		} else {
			p[12] = 0
		}
		if w.dlen == deltaLenV2 {
			le.PutUint64(p[13:], uint64(d.At))
		}
		p = p[w.dlen:]
	}
	le.PutUint32(buf[4:], crc32.Checksum(buf[8:], castagnoli))
	if _, err := w.f.WriteAt(buf, w.size.Load()); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
	}
	w.size.Add(int64(need))
	w.seq.Add(1)
	w.appends.Add(1)
	w.bytes.Add(uint64(need))
	return nil
}

// Truncate resets the log to its header — called after a fresh snapshot
// has been atomically published, making the logged batches redundant.
// The truncation is fsynced regardless of policy: a stale WAL replayed
// over a newer snapshot would double-apply its batches.
func (w *WAL) Truncate() error {
	if err := w.f.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("store: wal truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal truncate fsync: %w", err)
	}
	w.size.Store(walHeaderLen)
	w.seq.Store(0)
	return nil
}

// Size returns the log's current length in bytes (header included).
func (w *WAL) Size() int64 { return w.size.Load() }

// Records returns the number of batches the log currently holds.
func (w *WAL) Records() uint64 { return w.seq.Load() }

// Appends returns the batches appended through this handle (for
// metrics).
func (w *WAL) Appends() uint64 { return w.appends.Load() }

// AppendedBytes returns the bytes appended through this handle.
func (w *WAL) AppendedBytes() uint64 { return w.bytes.Load() }

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close() //nolint:errcheck
		return err
	}
	return w.f.Close()
}
