// Package subscribe turns the recommendation service into a feed
// engine: clients register standing top-k queries and the Hub pushes
// set/rank deltas when an ingested batch actually moves them, instead of
// being polled.
//
// The Hub inverts the dynamic manager's per-batch dirty set
// (dynamic.BatchEffect) into an affected-subscription index: every
// registered (user, topic, n, method) group is indexed under the nodes
// its recommendation depends on (Manager.Neighborhood — the query's own
// exploration region, whose met landmarks' lists are recomputed from
// exactly that region), so a batch marks dirty only the groups whose
// endpoints, staled landmarks or refreshed landmarks intersect their
// region — batches touching no subscribed neighborhood trigger zero
// re-scores. Dirty groups drain through one budgeted worker whose
// Compute callback is the server's coalesced/degradable serving path, so
// S subscribers of the same key cost one re-score per generation and
// pressure degrades exact-Tr re-scores to the landmark engine with
// "degraded":true stamped on the pushed events.
//
// Per subscription the Hub keeps the last pushed top-k and a bounded
// event ring: a re-score whose top-k membership and order are unchanged
// pushes nothing (score-only drift is suppressed); consumers that lapse
// past the ring either resync with a synthesized Reset snapshot (at
// connect) or are disconnected (mid-stream slow consumers).
package subscribe

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// Key identifies one standing query — the subscription-side mirror of
// the serving path's cache key, so coalescing composes across the two.
type Key struct {
	User   graph.NodeID
	Topic  topics.ID
	N      int
	Method string
}

// Result is one re-score outcome.
type Result struct {
	Scored []ranking.Scored
	// Degraded marks an exact-Tr re-score answered by the landmark
	// approximation under pressure; stamped onto the pushed events.
	Degraded bool
}

// Config parameterizes a Hub.
type Config struct {
	// MaxSubscriptions caps live subscriptions; Register beyond it fails
	// with ErrLimit. <= 0 uses 1024.
	MaxSubscriptions int
	// RescoreBudget bounds how many dirty groups one worker cycle
	// re-scores before re-checking for shutdown. <= 0 uses 32.
	RescoreBudget int
	// EventBuffer bounds the per-subscription event ring; consumers
	// falling further behind lapse. <= 0 uses 64.
	EventBuffer int
	// Compute answers one standing query — the server wires its
	// coalesced, admission-controlled, degradable compute path here.
	Compute func(ctx context.Context, k Key) (Result, error)
	// Neighborhood returns the dependency set of a key's recommendation
	// (Manager.Neighborhood); re-resolved after every re-score so the
	// index follows the graph.
	Neighborhood func(k Key) []graph.NodeID
	// Metrics, when non-nil, receives the hub's counters, gauges and the
	// push-latency histogram.
	Metrics *metrics.Registry
}

// Errors returned by the Hub.
var (
	// ErrLimit rejects registrations past MaxSubscriptions.
	ErrLimit = errors.New("subscribe: subscription limit reached")
	// ErrUnknown names a subscription id that is not (or no longer)
	// registered.
	ErrUnknown = errors.New("subscribe: unknown subscription")
	// ErrLapsed tells a mid-stream consumer its position fell out of the
	// bounded event ring: the stream cannot be resumed gap-free.
	ErrLapsed = errors.New("subscribe: consumer lapsed behind the event buffer")
	// ErrClosed rejects operations on a closed hub.
	ErrClosed = errors.New("subscribe: hub closed")
)

// group is the unit of re-scoring: every subscription sharing a Key.
type group struct {
	key  Key
	subs map[*sub]struct{}
	// nodes is the currently indexed dependency set.
	nodes []graph.NodeID
	// pending marks the group as queued in Hub.dirty; further marks
	// coalesce into the queued entry.
	pending bool
	// epoch is the freshest graph epoch folded into the pending mark;
	// ingestNs the oldest nonzero trigger timestamp (the push-latency
	// anchor). Both snapshot at take time.
	epoch    uint64
	ingestNs int64
}

// sub is one subscription: an event ring plus the last pushed snapshot.
type sub struct {
	id  string
	grp *group
	// seq is the sequence number of the newest event; the ring holds
	// seqs (seq-len(events), seq].
	seq    uint64
	events []client.Event
	// last is the last pushed top-k (nil before the first push); the
	// diff base and the Reset-resync payload.
	last []client.Entry
	// notify is closed and replaced whenever an event is appended (or
	// the subscription is torn down), waking blocked readers.
	notify chan struct{}
}

// takeItem is one dirty group snapshotted for re-scoring.
type takeItem struct {
	g        *group
	epoch    uint64
	ingestNs int64
}

// Hub owns every standing query of one server.
type Hub struct {
	cfg Config

	mu     sync.Mutex
	subs   map[string]*sub
	groups map[Key]*group
	index  map[graph.NodeID]map[*group]struct{}
	dirty  []*group // FIFO of pending groups
	epoch  uint64   // freshest epoch seen from OnBatch
	nextID uint64
	// inflight counts groups taken by the worker but not yet re-scored —
	// dirty==0 && inflight==0 means quiescent (Flush).
	inflight int
	closed   bool

	stats client.SubscriptionStats

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// Metric handles (nil-safe when Config.Metrics is nil).
	mMarks      *metrics.Counter
	mCoalesced  *metrics.Counter
	mRescores   *metrics.Counter
	mSuppressed *metrics.Counter
	mFailures   *metrics.Counter
	mPushed     *metrics.Counter
	mDropped    *metrics.Counter
	mPushLat    *metrics.Histogram
}

// New starts a hub and its re-score worker. Close releases it.
func New(cfg Config) *Hub {
	if cfg.MaxSubscriptions <= 0 {
		cfg.MaxSubscriptions = 1024
	}
	if cfg.RescoreBudget <= 0 {
		cfg.RescoreBudget = 32
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 64
	}
	h := &Hub{
		cfg:    cfg,
		subs:   make(map[string]*sub),
		groups: make(map[Key]*group),
		index:  make(map[graph.NodeID]map[*group]struct{}),
		wake:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	h.stats.Max = cfg.MaxSubscriptions
	if reg := cfg.Metrics; reg != nil {
		h.mMarks = reg.Counter("subscribe_rescore_marks_total", "Dirty marks delivered to subscription groups by batch effects.")
		h.mCoalesced = reg.Counter("subscribe_rescores_coalesced_total", "Dirty marks absorbed by an already-queued group (re-scores saved).")
		h.mRescores = reg.Counter("subscribe_rescores_total", "Standing-query re-score executions.")
		h.mSuppressed = reg.Counter("subscribe_pushes_suppressed_total", "Re-scores per subscription whose top-k was unchanged (no event pushed).")
		h.mFailures = reg.Counter("subscribe_rescore_failures_total", "Failed re-score executions (group re-queued).")
		h.mPushed = reg.Counter("subscribe_events_pushed_total", "Delta events appended to subscription event rings.")
		h.mDropped = reg.Counter("subscribe_dropped_slow_consumers_total", "Consumers disconnected after lapsing behind the event ring.")
		h.mPushLat = reg.Histogram("subscribe_push_latency_seconds", "Latency from ingest accept to delta availability in the event ring.", nil)
		reg.GaugeFunc("subscribe_active_subscriptions", "Live standing queries.",
			func() float64 { return float64(h.Stats().Active) })
		reg.GaugeFunc("subscribe_dirty_groups", "Subscription groups queued for re-scoring.",
			func() float64 { return float64(h.Stats().DirtyQueue) })
	}
	go h.worker()
	return h
}

// Close stops the worker and wakes every blocked reader. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		<-h.done
		return
	}
	h.closed = true
	for _, s := range h.subs {
		close(s.notify)
	}
	h.mu.Unlock()
	close(h.stop)
	<-h.done
}

// Register creates a subscription for k, returning its id. The first
// snapshot is pushed asynchronously by the worker (as a Reset event).
func (h *Hub) Register(k Key) (string, error) {
	// Resolve the dependency set outside the lock (it BFSes the graph).
	nodes := h.cfg.Neighborhood(k)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return "", ErrClosed
	}
	if len(h.subs) >= h.cfg.MaxSubscriptions {
		return "", ErrLimit
	}
	g := h.groups[k]
	if g == nil {
		g = &group{key: k, subs: make(map[*sub]struct{})}
		h.groups[k] = g
		h.indexLocked(g, nodes)
	}
	h.nextID++
	s := &sub{
		id:     "s" + strconv.FormatUint(h.nextID, 10),
		grp:    g,
		notify: make(chan struct{}),
	}
	g.subs[s] = struct{}{}
	h.subs[s.id] = s
	h.stats.Registered++
	// Queue the initial snapshot. Existing group members see a suppressed
	// push (their top-k is unchanged); the new member gets its Reset.
	h.markDirtyLocked(g, h.epoch, 0)
	h.kickLocked()
	return s.id, nil
}

// Unsubscribe tears down a subscription, waking its blocked readers.
func (h *Hub) Unsubscribe(id string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return ErrUnknown
	}
	delete(h.subs, id)
	close(s.notify)
	g := s.grp
	delete(g.subs, s)
	if len(g.subs) == 0 {
		// Last member: drop the group and its index entries. A queued
		// dirty entry stays in the FIFO; the worker skips empty groups.
		h.unindexLocked(g)
		delete(h.groups, g.key)
	}
	h.stats.Unsubscribed++
	return nil
}

// OnBatch folds one batch effect into the dirty queue: global effects
// mark every group, local effects only the groups indexed under a
// touched node. Wired to dynamic.Manager.SetBatchHook.
func (h *Hub) OnBatch(fx dynamic.BatchEffect) {
	h.mu.Lock()
	if fx.Epoch > h.epoch {
		h.epoch = fx.Epoch
	}
	if fx.Global {
		for _, g := range h.groups {
			h.markDirtyLocked(g, fx.Epoch, fx.OldestAt)
		}
	} else {
		var seen map[*group]struct{}
		mark := func(n graph.NodeID) {
			for g := range h.index[n] {
				if _, dup := seen[g]; dup {
					continue
				}
				if seen == nil {
					seen = make(map[*group]struct{})
				}
				seen[g] = struct{}{}
				h.markDirtyLocked(g, fx.Epoch, fx.OldestAt)
			}
		}
		for _, n := range fx.Endpoints {
			mark(n)
		}
		for _, n := range fx.StaleLandmarks {
			mark(n)
		}
		for _, n := range fx.Refreshed {
			mark(n)
		}
	}
	h.kickLocked()
	h.mu.Unlock()
}

// markDirtyLocked records one dirty mark on g: queued groups absorb it
// (the coalescing win — one re-score per group per drain no matter how
// many batches land first). Caller holds mu.
func (h *Hub) markDirtyLocked(g *group, epoch uint64, ingestNs int64) {
	h.stats.RescoreMarks++
	if h.mMarks != nil {
		h.mMarks.Inc()
	}
	if epoch > g.epoch {
		g.epoch = epoch
	}
	if ingestNs != 0 && (g.ingestNs == 0 || ingestNs < g.ingestNs) {
		g.ingestNs = ingestNs
	}
	if g.pending {
		h.stats.RescoresCoalesced++
		if h.mCoalesced != nil {
			h.mCoalesced.Inc()
		}
		return
	}
	g.pending = true
	h.dirty = append(h.dirty, g)
}

// kickLocked wakes the worker if it is parked. Caller holds mu (not
// required, but every caller already does).
func (h *Hub) kickLocked() {
	select {
	case h.wake <- struct{}{}:
	default:
	}
}

func (h *Hub) indexLocked(g *group, nodes []graph.NodeID) {
	g.nodes = nodes
	for _, n := range nodes {
		m := h.index[n]
		if m == nil {
			m = make(map[*group]struct{})
			h.index[n] = m
		}
		m[g] = struct{}{}
	}
}

func (h *Hub) unindexLocked(g *group) {
	for _, n := range g.nodes {
		if m := h.index[n]; m != nil {
			delete(m, g)
			if len(m) == 0 {
				delete(h.index, n)
			}
		}
	}
	g.nodes = nil
}

// worker drains the dirty queue, RescoreBudget groups per cycle, backing
// off after failed cycles so a saturated or broken compute path cannot
// spin it.
func (h *Hub) worker() {
	defer close(h.done)
	fails := 0
	for {
		select {
		case <-h.stop:
			return
		case <-h.wake:
		}
		for {
			batch := h.takeBatch()
			if len(batch) == 0 {
				break
			}
			anyErr := false
			for _, it := range batch {
				if err := h.rescore(it); err != nil {
					anyErr = true
				}
			}
			if !anyErr {
				fails = 0
				continue
			}
			fails++
			backoff := 25 * time.Millisecond << min(fails, 5)
			select {
			case <-h.stop:
				return
			case <-time.After(backoff):
			}
		}
	}
}

// takeBatch pops up to RescoreBudget non-empty dirty groups, snapshotting
// their trigger metadata and counting them inflight until re-scored.
func (h *Hub) takeBatch() []takeItem {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []takeItem
	for len(out) < h.cfg.RescoreBudget && len(h.dirty) > 0 {
		g := h.dirty[0]
		h.dirty[0] = nil
		h.dirty = h.dirty[1:]
		g.pending = false
		if len(g.subs) == 0 {
			g.ingestNs = 0
			continue
		}
		out = append(out, takeItem{g: g, epoch: g.epoch, ingestNs: g.ingestNs})
		g.ingestNs = 0
	}
	h.inflight += len(out)
	return out
}

// rescore recomputes one group's top-k and pushes diffs to its members.
func (h *Hub) rescore(it takeItem) error {
	defer func() {
		h.mu.Lock()
		h.inflight--
		h.mu.Unlock()
	}()
	g := it.g
	res, err := h.cfg.Compute(context.Background(), g.key)
	if err != nil {
		h.mu.Lock()
		h.stats.RescoreFailures++
		if h.mFailures != nil {
			h.mFailures.Inc()
		}
		// Re-queue so the state is retried; the worker's backoff paces
		// the retries.
		if len(g.subs) > 0 {
			h.markDirtyLocked(g, it.epoch, it.ingestNs)
		}
		h.mu.Unlock()
		return err
	}
	// The graph moved under this group; follow it with a fresh dependency
	// set before pushing, so the next batch marks against current edges.
	nodes := h.cfg.Neighborhood(g.key)

	top := make([]client.Entry, len(res.Scored))
	for i, sc := range res.Scored {
		top[i] = client.Entry{User: uint32(sc.Node), Score: sc.Score}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		// Close already woke (and permanently closed) every notify
		// channel; pushing would close them a second time.
		return nil
	}
	h.stats.Rescores++
	if h.mRescores != nil {
		h.mRescores.Inc()
	}
	if len(g.subs) == 0 {
		// Every member unsubscribed mid-compute; the group is unindexed.
		return nil
	}
	h.unindexLocked(g)
	h.indexLocked(g, nodes)
	var lat float64 = -1
	if it.ingestNs > 0 {
		lat = float64(time.Now().UnixNano()-it.ingestNs) / 1e9
	}
	for s := range g.subs {
		ev, changed := diffEvent(s.last, top, res.Degraded, it, s.seq+1, s.last == nil)
		if !changed {
			h.stats.PushesSuppressed++
			if h.mSuppressed != nil {
				h.mSuppressed.Inc()
			}
			continue
		}
		s.seq = ev.Seq
		s.events = append(s.events, ev)
		if excess := len(s.events) - h.cfg.EventBuffer; excess > 0 {
			s.events = append(s.events[:0], s.events[excess:]...)
		}
		s.last = top
		close(s.notify)
		s.notify = make(chan struct{})
		h.stats.EventsPushed++
		if h.mPushed != nil {
			h.mPushed.Inc()
		}
		if lat >= 0 && h.mPushLat != nil {
			h.mPushLat.Observe(lat)
		}
	}
	return nil
}

// diffEvent builds the delta event from the previously pushed top-k to
// next. changed is false when membership and order are identical —
// score-only drift — and reset subs (last == nil) always change.
func diffEvent(last []client.Entry, next []client.Entry, degraded bool, it takeItem, seq uint64, reset bool) (client.Event, bool) {
	if !reset && len(last) == len(next) {
		same := true
		for i := range next {
			if last[i].User != next[i].User {
				same = false
				break
			}
		}
		if same {
			return client.Event{}, false
		}
	}
	ev := client.Event{
		Seq:           seq,
		Epoch:         it.epoch,
		Reset:         reset,
		Degraded:      degraded,
		Top:           next,
		TriggerUnixNs: it.ingestNs,
	}
	if !reset {
		oldIdx := make(map[uint32]int, len(last))
		for i, e := range last {
			oldIdx[e.User] = i
		}
		inNext := make(map[uint32]bool, len(next))
		for i, e := range next {
			inNext[e.User] = true
			if j, ok := oldIdx[e.User]; !ok {
				ev.Added = append(ev.Added, e.User)
			} else if j != i {
				ev.Moved = append(ev.Moved, e.User)
			}
		}
		for _, e := range last {
			if !inNext[e.User] {
				ev.Removed = append(ev.Removed, e.User)
			}
		}
	}
	return ev, true
}

// EventsSince returns the buffered events of id with Seq > after, plus a
// channel that closes on the next push (for blocking when the slice is
// empty). When after has lapsed out of the ring: with resync true it
// synthesizes a Reset snapshot event carrying the current top-k (the
// connect-time recovery), otherwise it fails with ErrLapsed and counts a
// dropped slow consumer (the mid-stream disconnect).
func (h *Hub) EventsSince(id string, after uint64, resync bool) ([]client.Event, <-chan struct{}, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Closed first: the subs map survives Close (readers may still be
	// draining), but their notify channels are permanently closed — serving
	// events here would spin a blocked reader instead of ending it.
	if h.closed {
		return nil, nil, ErrClosed
	}
	s, ok := h.subs[id]
	if !ok {
		return nil, nil, ErrUnknown
	}
	oldest := s.seq - uint64(len(s.events)) + 1
	if len(s.events) > 0 && after+1 < oldest {
		if !resync {
			h.stats.DroppedSlowConsumers++
			if h.mDropped != nil {
				h.mDropped.Inc()
			}
			return nil, nil, ErrLapsed
		}
		ev := client.Event{Seq: s.seq, Epoch: h.epoch, Reset: true, Top: s.last}
		return []client.Event{ev}, s.notify, nil
	}
	var out []client.Event
	for _, ev := range s.events {
		if ev.Seq > after {
			out = append(out, ev)
		}
	}
	return out, s.notify, nil
}

// Get returns the key of a registered subscription.
func (h *Hub) Get(id string) (Key, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	if !ok {
		return Key{}, false
	}
	return s.grp.key, true
}

// Flush blocks until the hub is quiescent — no dirty groups queued and
// no re-score inflight — or ctx expires. Test and bench support.
func (h *Hub) Flush(ctx context.Context) error {
	for {
		h.mu.Lock()
		idle := len(h.dirty) == 0 && h.inflight == 0
		h.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() client.SubscriptionStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Active = len(h.subs)
	st.Groups = len(h.groups)
	st.DirtyQueue = len(h.dirty)
	return st
}
