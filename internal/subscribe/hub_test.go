package subscribe

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/ranking"
)

// fakeCompute is a controllable stand-in for the server's serving path:
// the top-k it returns is swappable, and it can be gated to hold the
// worker mid-re-score.
type fakeCompute struct {
	mu      sync.Mutex
	top     []ranking.Scored
	err     error
	started chan struct{} // one send per Compute entry, if non-nil
	gate    chan struct{} // one receive per Compute exit, if non-nil
	calls   atomic.Int64
}

func (f *fakeCompute) set(top []ranking.Scored) {
	f.mu.Lock()
	f.top = top
	f.mu.Unlock()
}

func (f *fakeCompute) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

func (f *fakeCompute) compute(ctx context.Context, k Key) (Result, error) {
	f.calls.Add(1)
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return Result{}, f.err
	}
	return Result{Scored: append([]ranking.Scored(nil), f.top...)}, nil
}

func scored(ids ...graph.NodeID) []ranking.Scored {
	out := make([]ranking.Scored, len(ids))
	for i, id := range ids {
		out[i] = ranking.Scored{Node: id, Score: float64(len(ids) - i)}
	}
	return out
}

// newTestHub wires a hub over fakeCompute with a fixed dependency set.
func newTestHub(t *testing.T, fc *fakeCompute, nodes []graph.NodeID, cfg Config) *Hub {
	t.Helper()
	cfg.Compute = fc.compute
	cfg.Neighborhood = func(Key) []graph.NodeID { return nodes }
	h := New(cfg)
	t.Cleanup(h.Close)
	return h
}

func flush(t *testing.T, h *Hub) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func TestRegisterPushesInitialReset(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2, 3)}
	h := newTestHub(t, fc, []graph.NodeID{1, 2, 3}, Config{})
	id, err := h.Register(Key{User: 7, N: 3, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, h)
	events, _, err := h.EventsSince(id, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events after register, want 1 (Reset)", len(events))
	}
	ev := events[0]
	if !ev.Reset || ev.Seq != 1 || len(ev.Top) != 3 || ev.Top[0].User != 1 {
		t.Errorf("initial event = %+v, want a Reset snapshot of [1 2 3]", ev)
	}
	if len(ev.Added)+len(ev.Removed)+len(ev.Moved) != 0 {
		t.Errorf("Reset event carries diffs: %+v", ev)
	}
}

// TestMarksCoalesce pins the coalescing invariant: marks landing while a
// group is queued (or mid-re-score, then queued) fold into one pending
// entry — one re-score per (group, generation) no matter how many
// batches land first.
func TestMarksCoalesce(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2), started: make(chan struct{}), gate: make(chan struct{})}
	h := newTestHub(t, fc, []graph.NodeID{1, 2}, Config{})
	if _, err := h.Register(Key{User: 7, N: 2, Method: "landmark"}); err != nil {
		t.Fatal(err)
	}
	<-fc.started // worker is inside the initial re-score, group not pending
	for i := 0; i < 3; i++ {
		h.OnBatch(dynamic.BatchEffect{Epoch: uint64(i + 1), Endpoints: []graph.NodeID{1}})
	}
	fc.gate <- struct{}{} // finish the initial re-score
	<-fc.started          // the three marks collapsed into this one
	fc.gate <- struct{}{}
	flush(t, h)
	st := h.Stats()
	if st.Rescores != 2 {
		t.Errorf("rescores = %d, want 2 (initial + one coalesced batch)", st.Rescores)
	}
	if st.RescoresCoalesced != 2 {
		t.Errorf("rescores_coalesced = %d, want 2 (marks 2 and 3 absorbed)", st.RescoresCoalesced)
	}
	if st.RescoreMarks != 4 {
		t.Errorf("rescore_marks = %d, want 4 (register + 3 batches)", st.RescoreMarks)
	}
}

// TestDiffSuppressionAndDeltas drives the three delta outcomes: unchanged
// top-k pushes nothing, a reorder pushes Moved, membership change pushes
// Added/Removed — with contiguous sequence numbers.
func TestDiffSuppressionAndDeltas(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2, 3)}
	h := newTestHub(t, fc, []graph.NodeID{1, 2, 3}, Config{})
	id, err := h.Register(Key{User: 7, N: 3, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, h)

	// Same membership and order, different scores: suppressed.
	fc.set([]ranking.Scored{{Node: 1, Score: 9}, {Node: 2, Score: 8}, {Node: 3, Score: 7}})
	h.OnBatch(dynamic.BatchEffect{Epoch: 1, Endpoints: []graph.NodeID{2}})
	flush(t, h)
	if events, _, _ := h.EventsSince(id, 1, false); len(events) != 0 {
		t.Fatalf("score-only drift pushed %d events, want 0", len(events))
	}
	if st := h.Stats(); st.PushesSuppressed != 1 {
		t.Errorf("pushes_suppressed = %d, want 1", st.PushesSuppressed)
	}

	// Reorder: Moved only.
	fc.set(scored(2, 1, 3))
	h.OnBatch(dynamic.BatchEffect{Epoch: 2, Endpoints: []graph.NodeID{2}})
	flush(t, h)
	events, _, _ := h.EventsSince(id, 1, false)
	if len(events) != 1 {
		t.Fatalf("reorder pushed %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Seq != 2 || ev.Reset {
		t.Errorf("reorder event = %+v, want seq 2, not reset", ev)
	}
	if len(ev.Added) != 0 || len(ev.Removed) != 0 || len(ev.Moved) != 2 {
		t.Errorf("reorder diffs = added %v removed %v moved %v, want only [2 1] moved",
			ev.Added, ev.Removed, ev.Moved)
	}

	// Membership change: Added/Removed.
	fc.set(scored(2, 1, 9))
	h.OnBatch(dynamic.BatchEffect{Epoch: 3, Endpoints: []graph.NodeID{1}})
	flush(t, h)
	events, _, _ = h.EventsSince(id, 2, false)
	if len(events) != 1 {
		t.Fatalf("membership change pushed %d events, want 1", len(events))
	}
	ev = events[0]
	if ev.Seq != 3 {
		t.Errorf("seq = %d, want 3 (contiguous)", ev.Seq)
	}
	if len(ev.Added) != 1 || ev.Added[0] != 9 || len(ev.Removed) != 1 || ev.Removed[0] != 3 {
		t.Errorf("diffs = added %v removed %v, want added [9] removed [3]", ev.Added, ev.Removed)
	}
	if ev.Epoch != 3 {
		t.Errorf("event epoch = %d, want 3", ev.Epoch)
	}
}

// TestAffectedIndexBoundsRescores is the efficiency gate at hub scope:
// batches touching no subscribed neighborhood trigger zero re-scores;
// batches touching it (or global effects) trigger exactly one.
func TestAffectedIndexBoundsRescores(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2)}
	h := newTestHub(t, fc, []graph.NodeID{1, 2, 3}, Config{})
	if _, err := h.Register(Key{User: 7, N: 2, Method: "landmark"}); err != nil {
		t.Fatal(err)
	}
	flush(t, h)
	base := h.Stats().Rescores

	// Disconnected region: no marks, no re-scores.
	for i := 0; i < 5; i++ {
		h.OnBatch(dynamic.BatchEffect{Epoch: uint64(i + 1), Endpoints: []graph.NodeID{100, 200}})
	}
	flush(t, h)
	if st := h.Stats(); st.Rescores != base || st.RescoreMarks != 1 {
		t.Errorf("disconnected batches: rescores %d (want %d), marks %d (want 1)",
			st.Rescores, base, st.RescoreMarks)
	}

	// A touched dependency node re-scores once.
	h.OnBatch(dynamic.BatchEffect{Epoch: 10, Endpoints: []graph.NodeID{3}})
	flush(t, h)
	if st := h.Stats(); st.Rescores != base+1 {
		t.Errorf("touching batch: rescores = %d, want %d", st.Rescores, base+1)
	}

	// Global effects always re-score.
	h.OnBatch(dynamic.BatchEffect{Epoch: 11, Global: true})
	flush(t, h)
	if st := h.Stats(); st.Rescores != base+2 {
		t.Errorf("global batch: rescores = %d, want %d", st.Rescores, base+2)
	}

	// Stale/refreshed landmark nodes mark through the same index.
	h.OnBatch(dynamic.BatchEffect{Epoch: 12, StaleLandmarks: []graph.NodeID{2}})
	flush(t, h)
	if st := h.Stats(); st.Rescores != base+3 {
		t.Errorf("stale-landmark batch: rescores = %d, want %d", st.Rescores, base+3)
	}
}

// TestSharedGroupSingleRescore: S subscribers of one key cost one
// re-score per drain, and each gets its own event stream.
func TestSharedGroupSingleRescore(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2)}
	h := newTestHub(t, fc, []graph.NodeID{1, 2}, Config{})
	k := Key{User: 7, N: 2, Method: "landmark"}
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := h.Register(k)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	flush(t, h)
	if st := h.Stats(); st.Groups != 1 || st.Active != 4 {
		t.Fatalf("stats = %+v, want 1 group, 4 active", st)
	}
	preCalls := fc.calls.Load()
	fc.set(scored(2, 1))
	h.OnBatch(dynamic.BatchEffect{Epoch: 1, Endpoints: []graph.NodeID{1}})
	flush(t, h)
	if got := fc.calls.Load() - preCalls; got != 1 {
		t.Errorf("4 subscribers cost %d computes for one batch, want 1", got)
	}
	for _, id := range ids {
		events, _, err := h.EventsSince(id, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 0 || events[len(events)-1].Top[0].User != 2 {
			t.Errorf("sub %s missed the shared delta: %+v", id, events)
		}
	}
}

// TestLapseResyncAndDrop pins both lapse semantics on a tiny ring: a
// connect-time reader resyncs with one synthesized Reset snapshot; a
// mid-stream reader is dropped with ErrLapsed and counted.
func TestLapseResyncAndDrop(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2)}
	h := newTestHub(t, fc, []graph.NodeID{1, 2}, Config{EventBuffer: 2})
	id, err := h.Register(Key{User: 7, N: 2, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, h)
	// Push 4 more deltas; the ring keeps only the last 2.
	tops := [][]graph.NodeID{{2, 1}, {1, 2}, {2, 1}, {1, 2}}
	for i, ids := range tops {
		fc.set(scored(ids...))
		h.OnBatch(dynamic.BatchEffect{Epoch: uint64(i + 1), Endpoints: []graph.NodeID{1}})
		flush(t, h)
	}

	// after=0 lapsed out of the ring (oldest buffered seq is 4).
	events, _, err := h.EventsSince(id, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !events[0].Reset || events[0].Seq != 5 {
		t.Fatalf("resync = %+v, want one Reset at seq 5", events)
	}
	if events[0].Top[0].User != 1 {
		t.Errorf("resync snapshot top = %+v, want current [1 2]", events[0].Top)
	}

	if _, _, err := h.EventsSince(id, 0, false); !errors.Is(err, ErrLapsed) {
		t.Fatalf("mid-stream lapse error = %v, want ErrLapsed", err)
	}
	if st := h.Stats(); st.DroppedSlowConsumers != 1 {
		t.Errorf("dropped_slow_consumers = %d, want 1", st.DroppedSlowConsumers)
	}

	// An in-window reader replays the tail without resync.
	events, _, err = h.EventsSince(id, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Seq != 4 || events[1].Seq != 5 {
		t.Errorf("tail replay = %+v, want seqs [4 5]", events)
	}
}

func TestLimitAndUnsubscribe(t *testing.T) {
	fc := &fakeCompute{top: scored(1)}
	h := newTestHub(t, fc, []graph.NodeID{1}, Config{MaxSubscriptions: 1})
	id, err := h.Register(Key{User: 1, N: 1, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register(Key{User: 2, N: 1, Method: "landmark"}); !errors.Is(err, ErrLimit) {
		t.Fatalf("over-limit register error = %v, want ErrLimit", err)
	}
	flush(t, h)

	// A blocked reader wakes on unsubscribe and then sees ErrUnknown.
	_, notify, err := h.EventsSince(id, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		<-notify
		close(done)
	}()
	if err := h.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reader not woken by unsubscribe")
	}
	if _, _, err := h.EventsSince(id, 0, false); !errors.Is(err, ErrUnknown) {
		t.Errorf("events after unsubscribe: %v, want ErrUnknown", err)
	}
	if err := h.Unsubscribe(id); !errors.Is(err, ErrUnknown) {
		t.Errorf("double unsubscribe: %v, want ErrUnknown", err)
	}
	if st := h.Stats(); st.Active != 0 || st.Groups != 0 {
		t.Errorf("stats after teardown = %+v, want empty", st)
	}
	// Room freed: registering succeeds again.
	if _, err := h.Register(Key{User: 3, N: 1, Method: "landmark"}); err != nil {
		t.Fatal(err)
	}
}

// TestRescoreFailureRetries: a failing compute path re-queues the group
// and the delta arrives once compute recovers; the failure is counted.
func TestRescoreFailureRetries(t *testing.T) {
	fc := &fakeCompute{top: scored(1, 2)}
	fc.setErr(errors.New("engine saturated"))
	h := newTestHub(t, fc, []graph.NodeID{1, 2}, Config{})
	id, err := h.Register(Key{User: 7, N: 2, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Stats().RescoreFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no failure recorded")
		}
		time.Sleep(time.Millisecond)
	}
	fc.setErr(nil)
	// The retried re-score (paced by the worker's backoff) delivers the
	// initial Reset.
	for {
		if time.Now().After(deadline) {
			t.Fatal("recovery never delivered the snapshot")
		}
		events, _, err := h.EventsSince(id, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) == 1 && events[0].Reset {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := h.Stats(); st.RescoreFailures == 0 {
		t.Error("rescore_failures = 0 after a failing compute")
	}
}

// TestClosedHub: operations on a closed hub fail cleanly and blocked
// readers wake.
func TestClosedHub(t *testing.T) {
	fc := &fakeCompute{top: scored(1)}
	cfg := Config{Compute: fc.compute, Neighborhood: func(Key) []graph.NodeID { return []graph.NodeID{1} }}
	h := New(cfg)
	id, err := h.Register(Key{User: 1, N: 1, Method: "landmark"})
	if err != nil {
		t.Fatal(err)
	}
	flush(t, h)
	_, notify, err := h.EventsSince(id, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	select {
	case <-notify:
	case <-time.After(5 * time.Second):
		t.Fatal("reader not woken by Close")
	}
	if _, _, err := h.EventsSince(id, 0, false); !errors.Is(err, ErrClosed) {
		t.Errorf("events on closed hub: %v, want ErrClosed", err)
	}
	if _, err := h.Register(Key{User: 2, N: 1, Method: "landmark"}); !errors.Is(err, ErrClosed) {
		t.Errorf("register on closed hub: %v, want ErrClosed", err)
	}
	h.Close() // idempotent
}
