// Package textgen generates synthetic micro-blog posts. The paper labels
// its graph by running topic extraction (OpenCalais + a multi-label SVM)
// over 2.3 billion real tweets; those tweets are unobtainable, so this
// package produces a deterministic corpus with the property the pipeline
// actually relies on: each user's posts reflect their publishing topics
// through characteristic vocabulary, mixed with topic-neutral filler.
//
// Every topic owns a pool of keyword tokens; a post about topic t draws a
// configurable fraction of its tokens from t's pool and the rest from a
// shared filler pool. The classifier package then has a genuine (if easy)
// multi-label text-classification problem to solve.
package textgen

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/topics"
)

// Config parameterizes corpus generation.
type Config struct {
	// PostsPerUserMin/Max bound how many posts each user publishes.
	PostsPerUserMin, PostsPerUserMax int
	// WordsPerPostMin/Max bound post length in tokens.
	WordsPerPostMin, WordsPerPostMax int
	// TopicWordFrac is the fraction of tokens drawn from the post topic's
	// keyword pool.
	TopicWordFrac float64
	// NoiseWordFrac is the fraction of tokens drawn from a *different*
	// random topic's pool (posts stray off-topic); the remainder is
	// neutral filler. Noise makes the classification task realistically
	// imperfect — the paper's SVM reached precision 0.90, not 1.0.
	NoiseWordFrac float64
	// KeywordsPerTopic is the pool size per topic.
	KeywordsPerTopic int
	// FillerWords is the shared filler pool size.
	FillerWords int
	// Seed drives generation.
	Seed uint64
}

// DefaultConfig returns small, fast defaults.
func DefaultConfig() Config {
	return Config{
		PostsPerUserMin: 5, PostsPerUserMax: 30,
		WordsPerPostMin: 6, WordsPerPostMax: 18,
		TopicWordFrac:    0.5,
		NoiseWordFrac:    0.05,
		KeywordsPerTopic: 40,
		FillerWords:      400,
		Seed:             1,
	}
}

// Post is one micro-blog post: its tokens and (for ground truth) the
// topic it was generated about. The topic is never shown to the
// classifier; it exists so tests and the user-study oracle can check
// behaviour.
type Post struct {
	Tokens []string
	Truth  topics.ID
}

// Corpus is the generated posts of every user.
type Corpus struct {
	vocab *topics.Vocabulary
	cfg   Config
	// Posts[u] lists user u's posts.
	Posts [][]Post
	// keywords[t] is topic t's pool; filler the shared pool.
	keywords [][]string
	filler   []string
}

// Vocabulary returns the topic vocabulary of the corpus.
func (c *Corpus) Vocabulary() *topics.Vocabulary { return c.vocab }

// Keywords exposes topic t's keyword pool (the "dictionary" a seed tagger
// such as OpenCalais effectively owns).
func (c *Corpus) Keywords(t topics.ID) []string { return c.keywords[t] }

// NumUsers returns the number of users covered.
func (c *Corpus) NumUsers() int { return len(c.Posts) }

// Generate produces a corpus for users whose publishing topics are given
// by profiles (profiles[u] = labelN(u)).
func Generate(vocab *topics.Vocabulary, profiles []topics.Set, cfg Config) *Corpus {
	r := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x7e7e7e7e7e7e7e7e))
	c := &Corpus{
		vocab:    vocab,
		cfg:      cfg,
		Posts:    make([][]Post, len(profiles)),
		keywords: make([][]string, vocab.Len()),
		filler:   make([]string, cfg.FillerWords),
	}
	for t := 0; t < vocab.Len(); t++ {
		pool := make([]string, cfg.KeywordsPerTopic)
		for k := range pool {
			pool[k] = fmt.Sprintf("%s_%d", vocab.Name(topics.ID(t)), k)
		}
		c.keywords[t] = pool
	}
	for i := range c.filler {
		c.filler[i] = fmt.Sprintf("the_%d", i)
	}

	for u, prof := range profiles {
		ts := prof.Topics()
		nPosts := cfg.PostsPerUserMin
		if cfg.PostsPerUserMax > cfg.PostsPerUserMin {
			nPosts += r.IntN(cfg.PostsPerUserMax - cfg.PostsPerUserMin)
		}
		posts := make([]Post, 0, nPosts)
		for p := 0; p < nPosts; p++ {
			var t topics.ID
			if len(ts) > 0 {
				t = ts[r.IntN(len(ts))]
			} else {
				t = topics.ID(r.IntN(vocab.Len()))
			}
			posts = append(posts, c.post(r, t))
		}
		c.Posts[u] = posts
	}
	return c
}

// post draws one post about topic t.
func (c *Corpus) post(r *rand.Rand, t topics.ID) Post {
	n := c.cfg.WordsPerPostMin
	if c.cfg.WordsPerPostMax > c.cfg.WordsPerPostMin {
		n += r.IntN(c.cfg.WordsPerPostMax - c.cfg.WordsPerPostMin)
	}
	toks := make([]string, 0, n)
	pool := c.keywords[t]
	for i := 0; i < n; i++ {
		switch x := r.Float64(); {
		case x < c.cfg.TopicWordFrac:
			toks = append(toks, pool[r.IntN(len(pool))])
		case x < c.cfg.TopicWordFrac+c.cfg.NoiseWordFrac:
			other := c.keywords[r.IntN(len(c.keywords))]
			toks = append(toks, other[r.IntN(len(other))])
		default:
			toks = append(toks, c.filler[r.IntN(len(c.filler))])
		}
	}
	return Post{Tokens: toks, Truth: t}
}
