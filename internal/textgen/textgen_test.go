package textgen

import (
	"strings"
	"testing"

	"repro/internal/topics"
)

func corpus(t *testing.T, seed uint64) (*Corpus, []topics.Set) {
	t.Helper()
	vocab := topics.MustVocabulary([]string{"alpha", "beta", "gamma"})
	profiles := []topics.Set{
		topics.NewSet(0),
		topics.NewSet(1, 2),
		topics.NewSet(2),
		0, // no profile: posts drawn from random topics
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	return Generate(vocab, profiles, cfg), profiles
}

func TestGenerateShape(t *testing.T) {
	c, profiles := corpus(t, 1)
	if c.NumUsers() != len(profiles) {
		t.Fatalf("users = %d, want %d", c.NumUsers(), len(profiles))
	}
	cfg := DefaultConfig()
	for u, posts := range c.Posts {
		if len(posts) < cfg.PostsPerUserMin || len(posts) > cfg.PostsPerUserMax {
			t.Fatalf("user %d has %d posts, want [%d,%d]", u, len(posts), cfg.PostsPerUserMin, cfg.PostsPerUserMax)
		}
		for _, p := range posts {
			if len(p.Tokens) < cfg.WordsPerPostMin || len(p.Tokens) > cfg.WordsPerPostMax {
				t.Fatalf("post length %d out of bounds", len(p.Tokens))
			}
		}
	}
}

func TestPostsReflectProfile(t *testing.T) {
	c, profiles := corpus(t, 2)
	// User 0 publishes only on alpha: every post's truth must be alpha.
	for _, p := range c.Posts[0] {
		if !profiles[0].Has(p.Truth) {
			t.Fatalf("user 0 post about topic %d outside profile", p.Truth)
		}
	}
	// Alpha keywords must dominate the topical tokens of user 0.
	counts := map[string]int{}
	for _, p := range c.Posts[0] {
		for _, tok := range p.Tokens {
			switch {
			case strings.HasPrefix(tok, "alpha_"):
				counts["alpha"]++
			case strings.HasPrefix(tok, "beta_"), strings.HasPrefix(tok, "gamma_"):
				counts["other"]++
			}
		}
	}
	if counts["alpha"] <= counts["other"]*3 {
		t.Errorf("alpha keywords should dominate: %v", counts)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := corpus(t, 7)
	b, _ := corpus(t, 7)
	for u := range a.Posts {
		if len(a.Posts[u]) != len(b.Posts[u]) {
			t.Fatal("same seed must give identical corpora")
		}
		for i := range a.Posts[u] {
			if strings.Join(a.Posts[u][i].Tokens, " ") != strings.Join(b.Posts[u][i].Tokens, " ") {
				t.Fatal("same seed must give identical posts")
			}
		}
	}
}

func TestKeywordsDistinctPerTopic(t *testing.T) {
	c, _ := corpus(t, 3)
	seen := map[string]topics.ID{}
	for ti := 0; ti < c.Vocabulary().Len(); ti++ {
		for _, kw := range c.Keywords(topics.ID(ti)) {
			if prev, dup := seen[kw]; dup {
				t.Fatalf("keyword %q shared by topics %d and %d", kw, prev, ti)
			}
			seen[kw] = topics.ID(ti)
		}
	}
}
