package topics

import "testing"

func BenchmarkWuPalmer(b *testing.B) {
	tax := WebTaxonomy()
	n := tax.Vocabulary().Len()
	for i := 0; i < b.N; i++ {
		tax.WuPalmer(ID(i%n), ID((i*7)%n))
	}
}

func BenchmarkSimMatrixBuild(b *testing.B) {
	tax := WebTaxonomy()
	for i := 0; i < b.N; i++ {
		tax.SimMatrix()
	}
}

func BenchmarkMaxSim(b *testing.B) {
	m := WebTaxonomy().SimMatrix()
	s := NewSet(1, 5, 9, 14)
	for i := 0; i < b.N; i++ {
		m.MaxSim(s, ID(i%18))
	}
}
