package topics

import "math"

// WebTopicNames are the 18 standard web-document topics used for the
// Twitter dataset, modeled on the OpenCalais document-categorization
// vocabulary the paper uses.
var WebTopicNames = []string{
	"business", "finance", "entertainment", "sports", "leisure",
	"hospitality", "technology", "science", "environment", "health",
	"education", "social", "politics", "law", "religion",
	"war", "weather", "humaninterest",
}

// WebTaxonomy builds the taxonomy tree for the web topics. The shape gives
// intuitive Wu-Palmer values: technology~science are close, social~politics
// are close, technology~religion are far.
func WebTaxonomy() *Taxonomy {
	v := MustVocabulary(WebTopicNames)
	return NewTaxonomyBuilder(v).
		Category("economy", "root").
		Topic("business", "economy").
		Topic("finance", "economy").
		Category("lifestyle", "root").
		Topic("entertainment", "lifestyle").
		Topic("sports", "lifestyle").
		Topic("leisure", "lifestyle").
		Topic("hospitality", "lifestyle").
		Category("scitech", "root").
		Topic("technology", "scitech").
		Topic("science", "scitech").
		Category("nature", "scitech").
		Topic("environment", "nature").
		Topic("weather", "nature").
		Category("society", "root").
		Topic("health", "society").
		Topic("education", "society").
		Topic("social", "society").
		Category("civic", "society").
		Topic("politics", "civic").
		Topic("law", "civic").
		Topic("religion", "civic").
		Topic("war", "civic").
		Topic("humaninterest", "society").
		MustBuild()
}

// CSTopicNames are the computer-science research areas used for the DBLP
// dataset, modeled on the Singapore conference classification the paper
// uses to label conferences.
var CSTopicNames = []string{
	"databases", "datamining", "ir", "ai", "ml", "nlp",
	"vision", "graphics", "hci", "networks", "security", "os",
	"architecture", "softeng", "theory", "algorithms", "bioinformatics",
	"distributed",
}

// CSTaxonomy builds the taxonomy tree for the CS research areas.
func CSTaxonomy() *Taxonomy {
	v := MustVocabulary(CSTopicNames)
	return NewTaxonomyBuilder(v).
		Category("data", "root").
		Topic("databases", "data").
		Topic("datamining", "data").
		Topic("ir", "data").
		Category("intelligence", "root").
		Topic("ai", "intelligence").
		Topic("ml", "intelligence").
		Topic("nlp", "intelligence").
		Topic("vision", "intelligence").
		Category("interaction", "root").
		Topic("graphics", "interaction").
		Topic("hci", "interaction").
		Category("systems", "root").
		Topic("networks", "systems").
		Topic("security", "systems").
		Topic("os", "systems").
		Topic("architecture", "systems").
		Topic("distributed", "systems").
		Category("foundations", "root").
		Topic("theory", "foundations").
		Topic("algorithms", "foundations").
		Category("applications", "root").
		Topic("softeng", "applications").
		Topic("bioinformatics", "applications").
		MustBuild()
}

// FlatTaxonomy places every topic of a vocabulary directly under the
// root: Wu-Palmer degenerates to 1 for identical topics and 0.5 for
// distinct ones. It is the fallback when a stored graph's vocabulary
// matches no known taxonomy.
func FlatTaxonomy(v *Vocabulary) *Taxonomy {
	b := NewTaxonomyBuilder(v)
	for _, n := range v.Names() {
		b.Topic(n, "root")
	}
	return b.MustBuild()
}

// TaxonomyFor resolves the taxonomy matching a vocabulary: the default
// web or CS taxonomy when the names match, a flat one otherwise.
func TaxonomyFor(v *Vocabulary) *Taxonomy {
	if sameNames(v.Names(), WebTopicNames) {
		return WebTaxonomy()
	}
	if sameNames(v.Names(), CSTopicNames) {
		return CSTaxonomy()
	}
	return FlatTaxonomy(v)
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Popularity returns a biased (Zipf-like, exponent s) popularity weight per
// topic, normalized to sum to 1. The paper observes a strongly biased
// distribution of edges per topic (Figure 3, matching the Yahoo! Directory
// bias); the generator uses these weights to reproduce that skew. Topic 0
// is the most popular. The paper's running examples place technology among
// the most popular topics and social among the least, so weights are
// assigned by a fixed popularity order rather than by id order.
func Popularity(v *Vocabulary, s float64) []float64 {
	n := v.Len()
	w := make([]float64, n)
	// Rank topics: an explicit order for the known vocabularies, id order
	// otherwise.
	order := popularityOrder(v)
	sum := 0.0
	for rank, id := range order {
		w[id] = 1 / math.Pow(float64(rank+1), s)
		sum += w[id]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// popularityOrder returns topic ids from most to least popular.
func popularityOrder(v *Vocabulary) []ID {
	// For the web vocabulary follow the paper's observations: technology is
	// the most popular topic used in Figure 9, leisure has medium
	// popularity, social is infrequent.
	if id, ok := v.Lookup("technology"); ok {
		names := []string{
			"technology", "entertainment", "sports", "business", "politics",
			"health", "science", "finance", "leisure", "education",
			"hospitality", "environment", "law", "weather", "humaninterest",
			"war", "religion", "social",
		}
		order := make([]ID, 0, v.Len())
		seen := make(map[ID]bool)
		for _, n := range names {
			if t, ok := v.Lookup(n); ok && !seen[t] {
				order = append(order, t)
				seen[t] = true
			}
		}
		for t := 0; t < v.Len(); t++ {
			if !seen[ID(t)] {
				order = append(order, ID(t))
			}
		}
		_ = id
		return order
	}
	order := make([]ID, v.Len())
	for i := range order {
		order[i] = ID(i)
	}
	return order
}
