package topics

import "fmt"

// Taxonomy is a rooted tree over category nodes. Every topic of a
// vocabulary is attached to exactly one node (usually a leaf). Semantic
// similarity between two topics is the Wu-Palmer measure on this tree:
//
//	sim(a, b) = 2·depth(lcs(a,b)) / (depth(a) + depth(b))
//
// where depth counts nodes from the root (the root has depth 1) and lcs is
// the least common subsumer. sim(t, t) = 1 for every topic, and sim is in
// (0, 1] because every pair shares at least the root.
type Taxonomy struct {
	vocab  *Vocabulary
	names  []string // node names; node 0 is the root
	parent []int    // parent[i] is the parent node of node i; parent[0] = -1
	depth  []int    // depth[i] counted from the root, root = 1
	ofTop  []int    // ofTop[t] is the node carrying topic t
}

// TaxonomyBuilder assembles a Taxonomy incrementally.
type TaxonomyBuilder struct {
	vocab  *Vocabulary
	names  []string
	parent []int
	byName map[string]int
	ofTop  []int
}

// NewTaxonomyBuilder starts a taxonomy for the given vocabulary with a
// root node named "root".
func NewTaxonomyBuilder(vocab *Vocabulary) *TaxonomyBuilder {
	b := &TaxonomyBuilder{
		vocab:  vocab,
		names:  []string{"root"},
		parent: []int{-1},
		byName: map[string]int{"root": 0},
		ofTop:  make([]int, vocab.Len()),
	}
	for i := range b.ofTop {
		b.ofTop[i] = -1
	}
	return b
}

// Category adds an internal category node under the named parent and
// returns the builder for chaining. Parent must already exist.
func (b *TaxonomyBuilder) Category(name, parent string) *TaxonomyBuilder {
	b.addNode(name, parent)
	return b
}

// Topic attaches the named vocabulary topic as a node under parent.
func (b *TaxonomyBuilder) Topic(topicName, parent string) *TaxonomyBuilder {
	id, ok := b.vocab.Lookup(topicName)
	if !ok {
		panic(fmt.Sprintf("topics: taxonomy references unknown topic %q", topicName))
	}
	n := b.addNode(topicName, parent)
	b.ofTop[id] = n
	return b
}

func (b *TaxonomyBuilder) addNode(name, parent string) int {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("topics: duplicate taxonomy node %q", name))
	}
	p, ok := b.byName[parent]
	if !ok {
		panic(fmt.Sprintf("topics: unknown parent node %q for %q", parent, name))
	}
	n := len(b.names)
	b.names = append(b.names, name)
	b.parent = append(b.parent, p)
	b.byName[name] = n
	return n
}

// Build finalizes the taxonomy. Every vocabulary topic must have been
// attached.
func (b *TaxonomyBuilder) Build() (*Taxonomy, error) {
	for t, n := range b.ofTop {
		if n < 0 {
			return nil, fmt.Errorf("topics: topic %q not placed in taxonomy", b.vocab.Name(ID(t)))
		}
	}
	t := &Taxonomy{
		vocab:  b.vocab,
		names:  b.names,
		parent: b.parent,
		depth:  make([]int, len(b.names)),
		ofTop:  b.ofTop,
	}
	for i := range t.names {
		d := 0
		for n := i; n >= 0; n = t.parent[n] {
			d++
		}
		t.depth[i] = d
	}
	return t, nil
}

// MustBuild is Build that panics on error.
func (b *TaxonomyBuilder) MustBuild() *Taxonomy {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// Vocabulary returns the vocabulary this taxonomy covers.
func (t *Taxonomy) Vocabulary() *Vocabulary { return t.vocab }

// Depth returns the tree depth of topic a (root = 1).
func (t *Taxonomy) Depth(a ID) int { return t.depth[t.ofTop[a]] }

// lcsDepth returns the depth of the least common subsumer of nodes x and y.
func (t *Taxonomy) lcsDepth(x, y int) int {
	for t.depth[x] > t.depth[y] {
		x = t.parent[x]
	}
	for t.depth[y] > t.depth[x] {
		y = t.parent[y]
	}
	for x != y {
		x = t.parent[x]
		y = t.parent[y]
	}
	return t.depth[x]
}

// WuPalmer returns the Wu-Palmer similarity between topics a and b.
func (t *Taxonomy) WuPalmer(a, b ID) float64 {
	x, y := t.ofTop[a], t.ofTop[b]
	return 2 * float64(t.lcsDepth(x, y)) / float64(t.depth[x]+t.depth[y])
}

// SimMatrix precomputes all pairwise Wu-Palmer similarities into a
// triangular matrix (the paper stores exactly this: a triangular similarity
// matrix kept in memory).
func (t *Taxonomy) SimMatrix() *SimMatrix {
	n := t.vocab.Len()
	m := NewSimMatrix(n)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			m.Set(ID(a), ID(b), t.WuPalmer(ID(a), ID(b)))
		}
	}
	return m
}

// SimMatrix is a symmetric topic-similarity matrix with triangular storage.
type SimMatrix struct {
	n    int
	vals []float64 // row-major upper triangle including the diagonal
}

// NewSimMatrix allocates an n×n symmetric matrix initialized to zero.
func NewSimMatrix(n int) *SimMatrix {
	return &SimMatrix{n: n, vals: make([]float64, n*(n+1)/2)}
}

// Len returns the number of topics covered.
func (m *SimMatrix) Len() int { return m.n }

func (m *SimMatrix) idx(a, b ID) int {
	i, j := int(a), int(b)
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the packed upper triangle, then column j.
	return i*m.n - i*(i-1)/2 + (j - i)
}

// Set stores the similarity of (a, b); symmetric.
func (m *SimMatrix) Set(a, b ID, v float64) { m.vals[m.idx(a, b)] = v }

// At returns the similarity of (a, b).
func (m *SimMatrix) At(a, b ID) float64 { return m.vals[m.idx(a, b)] }

// MaxSim returns the maximum similarity between topic t and any topic in
// set s, the per-edge semantic factor of Equation 3:
//
//	max_{t' ∈ labelE(e)} sim(t', t)
//
// It returns 0 for the empty set.
func (m *SimMatrix) MaxSim(s Set, t ID) float64 {
	best := 0.0
	s.ForEach(func(x ID) {
		if v := m.At(x, t); v > best {
			best = v
		}
	})
	return best
}

// Bytes returns the in-memory size of the packed values, used to report the
// footprint the paper discusses (2.5 KB for 18 topics).
func (m *SimMatrix) Bytes() int { return len(m.vals) * 8 }
