package topics

import (
	"testing"
	"testing/quick"
)

func testTaxonomy(t *testing.T) *Taxonomy {
	t.Helper()
	v := MustVocabulary([]string{"cat", "dog", "oak", "pine", "rock"})
	return NewTaxonomyBuilder(v).
		Category("living", "root").
		Category("animal", "living").
		Topic("cat", "animal").
		Topic("dog", "animal").
		Category("tree", "living").
		Topic("oak", "tree").
		Topic("pine", "tree").
		Topic("rock", "root").
		MustBuild()
}

func TestWuPalmerKnownValues(t *testing.T) {
	tax := testTaxonomy(t)
	v := tax.Vocabulary()
	cat, dog := v.MustLookup("cat"), v.MustLookup("dog")
	oak, rock := v.MustLookup("oak"), v.MustLookup("rock")

	// depth(root)=1, living=2, animal=3, cat=dog=4, tree=3, oak=4, rock=2.
	if d := tax.Depth(cat); d != 4 {
		t.Fatalf("depth(cat) = %d, want 4", d)
	}
	// sim(cat,dog) = 2*3/(4+4) = 0.75 (lcs = animal, depth 3).
	if got := tax.WuPalmer(cat, dog); !feq(got, 0.75) {
		t.Errorf("sim(cat,dog) = %g, want 0.75", got)
	}
	// sim(cat,oak) = 2*2/(4+4) = 0.5 (lcs = living).
	if got := tax.WuPalmer(cat, oak); !feq(got, 0.5) {
		t.Errorf("sim(cat,oak) = %g, want 0.5", got)
	}
	// sim(cat,rock) = 2*1/(4+2) = 1/3 (lcs = root).
	if got := tax.WuPalmer(cat, rock); !feq(got, 1.0/3) {
		t.Errorf("sim(cat,rock) = %g, want 1/3", got)
	}
}

func feq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

// TestWuPalmerProperties: identity, symmetry, range (0,1], and "closer in
// the tree means more similar".
func TestWuPalmerProperties(t *testing.T) {
	for _, tax := range []*Taxonomy{testTaxonomy(t), WebTaxonomy(), CSTaxonomy()} {
		n := tax.Vocabulary().Len()
		prop := func(a8, b8 uint8) bool {
			a, b := ID(int(a8)%n), ID(int(b8)%n)
			sab, sba := tax.WuPalmer(a, b), tax.WuPalmer(b, a)
			if sab != sba {
				return false
			}
			if sab <= 0 || sab > 1 {
				return false
			}
			return tax.WuPalmer(a, a) == 1
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestTaxonomyBuilderErrors(t *testing.T) {
	v := MustVocabulary([]string{"a", "b"})
	// Unplaced topic must fail Build.
	if _, err := NewTaxonomyBuilder(v).Topic("a", "root").Build(); err == nil {
		t.Error("Build must fail when a topic is unplaced")
	}
	// Unknown parent panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown parent must panic")
			}
		}()
		NewTaxonomyBuilder(v).Category("x", "nope")
	}()
	// Duplicate node panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate node must panic")
			}
		}()
		NewTaxonomyBuilder(v).Category("x", "root").Category("x", "root")
	}()
	// Unknown topic panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown topic must panic")
			}
		}()
		NewTaxonomyBuilder(v).Topic("zzz", "root")
	}()
}

func TestSimMatrixAgainstTaxonomy(t *testing.T) {
	tax := WebTaxonomy()
	m := tax.SimMatrix()
	n := tax.Vocabulary().Len()
	if m.Len() != n {
		t.Fatalf("matrix covers %d, want %d", m.Len(), n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if got, want := m.At(ID(a), ID(b)), tax.WuPalmer(ID(a), ID(b)); !feq(got, want) {
				t.Fatalf("At(%d,%d) = %g, want %g", a, b, got, want)
			}
		}
	}
	// The 18-topic matrix must be about the paper's 2.5 KB.
	if b := m.Bytes(); b > 4096 {
		t.Errorf("similarity matrix = %d bytes; the paper stores ~2.5KB", b)
	}
}

func TestMaxSim(t *testing.T) {
	tax := testTaxonomy(t)
	v := tax.Vocabulary()
	m := tax.SimMatrix()
	cat, dog, oak := v.MustLookup("cat"), v.MustLookup("dog"), v.MustLookup("oak")
	if got := m.MaxSim(NewSet(dog, oak), cat); !feq(got, 0.75) {
		t.Errorf("MaxSim = %g, want 0.75 (via dog)", got)
	}
	if got := m.MaxSim(0, cat); got != 0 {
		t.Errorf("MaxSim over empty set = %g, want 0", got)
	}
	if got := m.MaxSim(NewSet(cat), cat); !feq(got, 1) {
		t.Errorf("MaxSim with the topic itself = %g, want 1", got)
	}
}

func TestDefaultTaxonomies(t *testing.T) {
	for name, tax := range map[string]*Taxonomy{"web": WebTaxonomy(), "cs": CSTaxonomy()} {
		if tax.Vocabulary().Len() != 18 {
			t.Errorf("%s vocabulary has %d topics, want 18", name, tax.Vocabulary().Len())
		}
	}
	// Sanity: technology is closer to science than to religion.
	web := WebTaxonomy()
	v := web.Vocabulary()
	tech := v.MustLookup("technology")
	if web.WuPalmer(tech, v.MustLookup("science")) <= web.WuPalmer(tech, v.MustLookup("religion")) {
		t.Error("taxonomy shape wrong: technology should be nearer science than religion")
	}
}

func TestPopularity(t *testing.T) {
	v := WebTaxonomy().Vocabulary()
	w := Popularity(v, 1.2)
	if len(w) != v.Len() {
		t.Fatalf("weights = %d, want %d", len(w), v.Len())
	}
	sum := 0.0
	for _, x := range w {
		if x <= 0 {
			t.Fatal("all weights must be positive")
		}
		sum += x
	}
	if !feq(sum, 1) {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	tech := v.MustLookup("technology")
	social := v.MustLookup("social")
	if w[tech] <= w[social] {
		t.Error("technology must be more popular than social (paper's Figure 9 setting)")
	}
}

func TestTaxonomyFor(t *testing.T) {
	if tax := TaxonomyFor(MustVocabulary(WebTopicNames)); tax.WuPalmer(0, 0) != 1 {
		t.Error("web taxonomy broken")
	}
	// Web names resolve to the real web taxonomy (technology~science
	// closer than flat 0.5).
	web := TaxonomyFor(MustVocabulary(WebTopicNames))
	v := web.Vocabulary()
	if web.WuPalmer(v.MustLookup("technology"), v.MustLookup("science")) <= 0.5 {
		t.Error("web vocabulary should resolve to the structured taxonomy")
	}
	cs := TaxonomyFor(MustVocabulary(CSTopicNames))
	cv := cs.Vocabulary()
	if cs.WuPalmer(cv.MustLookup("databases"), cv.MustLookup("datamining")) <= 0.5 {
		t.Error("cs vocabulary should resolve to the structured taxonomy")
	}
	// Unknown vocabulary falls back to flat: 0.5 off-diagonal, 1 on.
	flat := TaxonomyFor(MustVocabulary([]string{"x", "y", "z"}))
	if got := flat.WuPalmer(0, 1); !feq(got, 0.5) {
		t.Errorf("flat sim = %g, want 0.5", got)
	}
	if got := flat.WuPalmer(2, 2); !feq(got, 1) {
		t.Errorf("flat self-sim = %g, want 1", got)
	}
}
