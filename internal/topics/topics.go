// Package topics provides the topic vocabulary, topic sets, the topic
// taxonomy and the Wu-Palmer semantic similarity used to label the social
// graph and to score edge relevance.
//
// The paper labels nodes and edges with topics drawn from a small
// vocabulary (18 standard OpenCalais web topics for the Twitter dataset, a
// CS classification for DBLP) and measures topic-to-topic similarity with
// Wu-Palmer over WordNet. Here the vocabulary is explicit and the taxonomy
// is an explicit tree, so Wu-Palmer is computed exactly.
package topics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// ID identifies a topic within a Vocabulary. Vocabularies hold at most
// MaxTopics topics so that a Set fits in a 32-bit mask.
type ID uint8

// MaxTopics is the maximum number of topics in a vocabulary.
const MaxTopics = 32

// None marks the absence of a topic.
const None ID = 0xFF

// Set is a bitmask of topics. The bit for topic id t is 1<<t.
type Set uint32

// NewSet builds a Set from the given topic ids.
func NewSet(ids ...ID) Set {
	var s Set
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// Add returns s with topic t added.
func (s Set) Add(t ID) Set { return s | 1<<t }

// Remove returns s with topic t removed.
func (s Set) Remove(t ID) Set { return s &^ (1 << t) }

// Has reports whether topic t is in the set.
func (s Set) Has(t ID) bool { return s&(1<<t) != 0 }

// Len returns the number of topics in the set.
func (s Set) Len() int { return bits.OnesCount32(uint32(s)) }

// IsEmpty reports whether the set has no topics.
func (s Set) IsEmpty() bool { return s == 0 }

// Union returns the union of s and o.
func (s Set) Union(o Set) Set { return s | o }

// Intersect returns the intersection of s and o.
func (s Set) Intersect(o Set) Set { return s & o }

// Topics returns the ids in the set in increasing order.
func (s Set) Topics() []ID {
	if s == 0 {
		return nil
	}
	out := make([]ID, 0, s.Len())
	for m := uint32(s); m != 0; m &= m - 1 {
		out = append(out, ID(bits.TrailingZeros32(m)))
	}
	return out
}

// ForEach calls fn for every topic in the set, in increasing order.
func (s Set) ForEach(fn func(ID)) {
	for m := uint32(s); m != 0; m &= m - 1 {
		fn(ID(bits.TrailingZeros32(m)))
	}
}

// Vocabulary is an immutable, ordered list of topic names.
type Vocabulary struct {
	names []string
	index map[string]ID
}

// NewVocabulary builds a vocabulary from topic names. Names must be unique,
// non-empty, and at most MaxTopics many.
func NewVocabulary(names []string) (*Vocabulary, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("topics: empty vocabulary")
	}
	if len(names) > MaxTopics {
		return nil, fmt.Errorf("topics: %d topics exceeds maximum %d", len(names), MaxTopics)
	}
	v := &Vocabulary{
		names: make([]string, len(names)),
		index: make(map[string]ID, len(names)),
	}
	for i, n := range names {
		n = strings.ToLower(strings.TrimSpace(n))
		if n == "" {
			return nil, fmt.Errorf("topics: empty topic name at position %d", i)
		}
		if _, dup := v.index[n]; dup {
			return nil, fmt.Errorf("topics: duplicate topic %q", n)
		}
		v.names[i] = n
		v.index[n] = ID(i)
	}
	return v, nil
}

// MustVocabulary is NewVocabulary that panics on error; for fixed,
// programmer-defined vocabularies.
func MustVocabulary(names []string) *Vocabulary {
	v, err := NewVocabulary(names)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of topics.
func (v *Vocabulary) Len() int { return len(v.names) }

// Name returns the name of topic t.
func (v *Vocabulary) Name(t ID) string {
	if int(t) >= len(v.names) {
		return fmt.Sprintf("topic#%d", t)
	}
	return v.names[t]
}

// Names returns a copy of all topic names in id order.
func (v *Vocabulary) Names() []string {
	out := make([]string, len(v.names))
	copy(out, v.names)
	return out
}

// Lookup returns the id of the named topic.
func (v *Vocabulary) Lookup(name string) (ID, bool) {
	id, ok := v.index[strings.ToLower(strings.TrimSpace(name))]
	return id, ok
}

// MustLookup returns the id of the named topic and panics if absent.
func (v *Vocabulary) MustLookup(name string) ID {
	id, ok := v.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("topics: unknown topic %q", name))
	}
	return id
}

// SetOf builds a Set from topic names; unknown names are reported as an
// error.
func (v *Vocabulary) SetOf(names ...string) (Set, error) {
	var s Set
	for _, n := range names {
		id, ok := v.Lookup(n)
		if !ok {
			return 0, fmt.Errorf("topics: unknown topic %q", n)
		}
		s = s.Add(id)
	}
	return s, nil
}

// FormatSet renders a set as a sorted, comma-separated list of names.
func (v *Vocabulary) FormatSet(s Set) string {
	names := make([]string, 0, s.Len())
	s.ForEach(func(t ID) { names = append(names, v.Name(t)) })
	sort.Strings(names)
	return strings.Join(names, ",")
}
