package topics

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewVocabulary(t *testing.T) {
	v, err := NewVocabulary([]string{"Alpha", " beta ", "gamma"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	if got := v.Name(0); got != "alpha" {
		t.Errorf("names must be normalized to lowercase/trimmed: %q", got)
	}
	if id, ok := v.Lookup("BETA"); !ok || id != 1 {
		t.Errorf("Lookup is case-insensitive: got (%d,%v)", id, ok)
	}
	if _, ok := v.Lookup("missing"); ok {
		t.Error("Lookup of unknown topic must fail")
	}
}

func TestNewVocabularyErrors(t *testing.T) {
	cases := map[string][]string{
		"empty list":   {},
		"empty name":   {"a", " "},
		"duplicate":    {"a", "b", "A"},
		"over maximum": make([]string, MaxTopics+1),
	}
	for i := range cases["over maximum"] {
		cases["over maximum"][i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	for name, in := range cases {
		if _, err := NewVocabulary(in); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMustLookupPanics(t *testing.T) {
	v := MustVocabulary([]string{"a"})
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown topic must panic")
		}
	}()
	v.MustLookup("zzz")
}

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 7, 3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Error("Has wrong")
	}
	s = s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Error("Remove wrong")
	}
	if !s.Remove(7).IsEmpty() {
		t.Error("IsEmpty wrong")
	}
	if got := NewSet(1, 2).Union(NewSet(2, 3)); got.Len() != 3 {
		t.Errorf("Union wrong: %v", got.Topics())
	}
	if got := NewSet(1, 2).Intersect(NewSet(2, 3)); got.Len() != 1 || !got.Has(2) {
		t.Errorf("Intersect wrong: %v", got.Topics())
	}
}

func TestSetTopicsOrdered(t *testing.T) {
	s := NewSet(9, 0, 17, 4)
	ts := s.Topics()
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] }) {
		t.Errorf("Topics must be ascending: %v", ts)
	}
	var visited []ID
	s.ForEach(func(id ID) { visited = append(visited, id) })
	if len(visited) != len(ts) {
		t.Fatalf("ForEach visited %d, want %d", len(visited), len(ts))
	}
	for i := range ts {
		if ts[i] != visited[i] {
			t.Errorf("ForEach order differs at %d", i)
		}
	}
}

// TestSetProperties checks algebraic laws with testing/quick.
func TestSetProperties(t *testing.T) {
	masked := func(x uint32) Set { return Set(x) }
	commutative := func(a, b uint32) bool {
		return masked(a).Union(masked(b)) == masked(b).Union(masked(a)) &&
			masked(a).Intersect(masked(b)) == masked(b).Intersect(masked(a))
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	lenConsistent := func(x uint32) bool {
		s := masked(x)
		return s.Len() == len(s.Topics())
	}
	if err := quick.Check(lenConsistent, nil); err != nil {
		t.Error(err)
	}
	addRemove := func(x uint32, id8 uint8) bool {
		id := ID(id8 % 32)
		s := masked(x)
		return s.Add(id).Has(id) && !s.Remove(id).Has(id)
	}
	if err := quick.Check(addRemove, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOfAndFormat(t *testing.T) {
	v := MustVocabulary([]string{"tech", "art", "food"})
	s, err := v.SetOf("food", "tech")
	if err != nil {
		t.Fatal(err)
	}
	if got := v.FormatSet(s); got != "food,tech" {
		t.Errorf("FormatSet = %q", got)
	}
	if _, err := v.SetOf("nope"); err == nil {
		t.Error("SetOf with unknown topic must error")
	}
}

func TestNameOutOfRange(t *testing.T) {
	v := MustVocabulary([]string{"a"})
	if got := v.Name(200); got == "" {
		t.Error("out-of-range Name should return a placeholder, not empty")
	}
}
