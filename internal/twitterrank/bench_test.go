package twitterrank

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/topics"
)

func BenchmarkRankPerTopic(b *testing.B) {
	cfg := gen.DefaultTwitterConfig()
	cfg.Nodes = 3000
	ds, err := gen.Twitter(cfg)
	if err != nil {
		b.Fatal(err)
	}
	in := InputFromProfiles(ds.Graph)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := New(in, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		r.Rank(topics.ID(i % 18))
	}
}
