package twitterrank

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/lda"
	"repro/internal/textgen"
	"repro/internal/topics"
)

// InputFromLDA builds the user-topic matrix the way Weng et al. describe:
// run LDA over each user's aggregated posts, then align the latent topics
// with the labeled vocabulary so that per-topic queries address the right
// rank vector.
//
// Alignment: latent topic k maps to the vocabulary topic whose keyword
// pool captures the most of φ_k's probability mass; a user's DT row is
// the sum of θ_u over the latent topics mapped to each vocabulary topic.
// Tweet counts |τ_u| are the user's actual post counts.
func InputFromLDA(g graph.View, corpus *textgen.Corpus, cfg lda.Config) (*Input, error) {
	if corpus.NumUsers() != g.NumNodes() {
		return nil, fmt.Errorf("twitterrank: corpus covers %d users, graph has %d", corpus.NumUsers(), g.NumNodes())
	}
	docs := make([][]string, corpus.NumUsers())
	for u, posts := range corpus.Posts {
		var doc []string
		for _, p := range posts {
			doc = append(doc, p.Tokens...)
		}
		docs[u] = doc
	}
	model, err := lda.Fit(docs, cfg)
	if err != nil {
		return nil, err
	}

	// Keyword ownership per vocabulary topic.
	vocab := g.Vocabulary()
	T := vocab.Len()
	owner := make(map[string]topics.ID)
	for t := 0; t < T; t++ {
		for _, kw := range corpus.Keywords(topics.ID(t)) {
			owner[kw] = topics.ID(t)
		}
	}
	// Map each latent topic to the vocabulary topic collecting the most
	// of its top-word mass.
	mapTo := make([]topics.ID, model.K())
	for k := 0; k < model.K(); k++ {
		votes := make([]float64, T)
		phi := model.TopicWords(k)
		for _, w := range model.TopWords(k, 25) {
			if t, ok := owner[w]; ok {
				// Weight the vote by the word's probability.
				votes[t] += phi[wordIndex(model, w)]
			}
		}
		best := topics.ID(0)
		for t := 1; t < T; t++ {
			if votes[t] > votes[best] {
				best = topics.ID(t)
			}
		}
		mapTo[k] = best
	}

	in := &Input{
		G:         g,
		TopicDist: make([]float64, g.NumNodes()*T),
		Tweets:    make([]float64, g.NumNodes()),
	}
	for u := 0; u < g.NumNodes(); u++ {
		in.Tweets[u] = float64(len(corpus.Posts[u]))
		if len(docs[u]) == 0 {
			continue
		}
		theta := model.DocTopics(u)
		row := in.TopicDist[u*T : (u+1)*T]
		for k, p := range theta {
			row[mapTo[k]] += p
		}
	}
	return in, nil
}

// wordIndex finds a word's id in the model vocabulary; TopWords only
// returns known words, so the lookup always succeeds.
func wordIndex(m *lda.Model, w string) int {
	return m.WordID(w)
}
