// Package twitterrank implements the TwitterRank baseline [Weng, Lim,
// Jiang, He — WSDM 2010], the topic-sensitive PageRank variant the paper
// compares against.
//
// For each topic t a random surfer walks the follow graph from follower
// to followee. The transition probability from s_i to a followee s_j
// weights s_j by its posting volume and by the similarity of the two
// users' interest in topic t:
//
//	P_t(i → j) = |τ_j| / Σ_{a: i follows a} |τ_a| · sim_t(i, j)
//	sim_t(i, j) = 1 − |DT'_{it} − DT'_{jt}|
//
// where |τ_j| is j's tweet count and DT' the row-normalized user-topic
// matrix. With teleport γ the per-topic rank vector solves
//
//	TR_t = γ · P_tᵀ · TR_t + (1 − γ) · E_t,
//
// E_t being the column of DT normalized over users. Rows of P_t are
// normalized to be stochastic; users without followees teleport fully.
//
// TwitterRank is a *global* per-topic authority ranking — it is not
// personalized to the query user, which is exactly the behaviour the
// paper's evaluation exposes (strong on very popular accounts, weak
// elsewhere).
package twitterrank

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// Input bundles what TwitterRank needs beyond the graph: the user-topic
// matrix and per-user tweet counts.
type Input struct {
	G graph.View
	// TopicDist is row-major n×T; row u is DT'_u (sums to 1 for users
	// with any topic, all-zero otherwise).
	TopicDist []float64
	// Tweets is |τ_u| per user (posting volume).
	Tweets []float64
}

// InputFromProfiles derives the user-topic matrix from the graph's node
// profiles (uniform over labelN(u)) and tweet counts from in-degree+1
// (popular accounts post and are retweeted more), a deterministic stand-in
// for the paper's LDA topic distributions over real tweets.
func InputFromProfiles(g graph.View) *Input {
	T := g.Vocabulary().Len()
	n := g.NumNodes()
	in := &Input{
		G:         g,
		TopicDist: make([]float64, n*T),
		Tweets:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		prof := g.NodeTopics(graph.NodeID(u))
		if k := prof.Len(); k > 0 {
			w := 1 / float64(k)
			prof.ForEach(func(t topics.ID) {
				in.TopicDist[u*T+int(t)] = w
			})
		}
		in.Tweets[u] = float64(g.InDegree(graph.NodeID(u)) + 1)
	}
	return in
}

// Params controls the random walk.
type Params struct {
	// Gamma is the damping factor (paper setting: 0.85).
	Gamma float64
	// MaxIters caps power iterations per topic.
	MaxIters int
	// Tol is the L1 convergence threshold.
	Tol float64
}

// DefaultParams returns the standard TwitterRank parameters.
func DefaultParams() Params {
	return Params{Gamma: 0.85, MaxIters: 100, Tol: 1e-10}
}

// Recommender computes and caches per-topic TwitterRank vectors.
type Recommender struct {
	in     *Input
	params Params

	mu    sync.Mutex
	ranks map[topics.ID][]float64
}

// New validates the input and creates a lazy recommender; per-topic rank
// vectors are computed on first use and cached.
func New(in *Input, params Params) (*Recommender, error) {
	n := in.G.NumNodes()
	T := in.G.Vocabulary().Len()
	if len(in.TopicDist) != n*T {
		return nil, fmt.Errorf("twitterrank: TopicDist has %d entries, want %d", len(in.TopicDist), n*T)
	}
	if len(in.Tweets) != n {
		return nil, fmt.Errorf("twitterrank: Tweets has %d entries, want %d", len(in.Tweets), n)
	}
	if params.Gamma <= 0 || params.Gamma >= 1 {
		return nil, fmt.Errorf("twitterrank: Gamma must be in (0,1), got %g", params.Gamma)
	}
	if params.MaxIters < 1 {
		return nil, fmt.Errorf("twitterrank: MaxIters must be >= 1")
	}
	return &Recommender{in: in, params: params, ranks: make(map[topics.ID][]float64)}, nil
}

// Name returns "TwitterRank".
func (r *Recommender) Name() string { return "TwitterRank" }

// Rank returns the TwitterRank vector for topic t (indexed by node id).
// The slice is cached and must not be modified.
func (r *Recommender) Rank(t topics.ID) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.ranks[t]; ok {
		return v
	}
	v := r.compute(t)
	r.ranks[t] = v
	return v
}

func (r *Recommender) compute(t topics.ID) []float64 {
	g := r.in.G
	n := g.NumNodes()
	T := g.Vocabulary().Len()
	gamma := r.params.Gamma

	// Teleport vector E_t: DT column t normalized over users; uniform if
	// nobody has mass on t.
	et := make([]float64, n)
	sum := 0.0
	for u := 0; u < n; u++ {
		et[u] = r.in.TopicDist[u*T+int(t)]
		sum += et[u]
	}
	if sum == 0 {
		for u := range et {
			et[u] = 1 / float64(n)
		}
	} else {
		for u := range et {
			et[u] /= sum
		}
	}

	// Per-source transition weights: w(i→j) = τ_j · (1 − |DT_it − DT_jt|),
	// normalized per row. Row sums are recomputed each iteration from the
	// out-adjacency; weights are cheap enough not to materialize.
	rowWeight := func(i int, jt float64, j graph.NodeID) float64 {
		s := 1 - math.Abs(r.in.TopicDist[i*T+int(t)]-jt)
		return r.in.Tweets[j] * s
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	copy(cur, et)

	for iter := 0; iter < r.params.MaxIters; iter++ {
		for u := range next {
			next[u] = (1 - gamma) * et[u]
		}
		dangling := 0.0
		for i := 0; i < n; i++ {
			mass := cur[i]
			if mass == 0 {
				continue
			}
			dsts, _ := g.Out(graph.NodeID(i))
			if len(dsts) == 0 {
				dangling += mass
				continue
			}
			rowSum := 0.0
			for _, j := range dsts {
				rowSum += rowWeight(i, r.in.TopicDist[int(j)*T+int(t)], j)
			}
			if rowSum == 0 {
				dangling += mass
				continue
			}
			scale := gamma * mass / rowSum
			for _, j := range dsts {
				next[j] += scale * rowWeight(i, r.in.TopicDist[int(j)*T+int(t)], j)
			}
		}
		// Dangling mass teleports according to E_t.
		if dangling > 0 {
			for u := range next {
				next[u] += gamma * dangling * et[u]
			}
		}
		diff := 0.0
		for u := range next {
			diff += math.Abs(next[u] - cur[u])
		}
		cur, next = next, cur
		if diff < r.params.Tol {
			break
		}
	}
	return cur
}

// ScoreCandidates returns TR_t for each candidate. TwitterRank is global:
// the query user u only matters through the shared per-topic vector.
func (r *Recommender) ScoreCandidates(u graph.NodeID, t topics.ID, cands []graph.NodeID) []float64 {
	rank := r.Rank(t)
	out := make([]float64, len(cands))
	for i, c := range cands {
		out[i] = rank[c]
	}
	return out
}

// Recommend returns the globally top-n accounts on topic t, excluding u.
func (r *Recommender) Recommend(u graph.NodeID, t topics.ID, n int) []ranking.Scored {
	rank := r.Rank(t)
	top := ranking.NewTopN(n)
	for v, s := range rank {
		if graph.NodeID(v) == u || s == 0 {
			continue
		}
		top.Insert(graph.NodeID(v), s)
	}
	return top.List()
}

var _ ranking.Recommender = (*Recommender)(nil)
