package twitterrank

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lda"
	"repro/internal/textgen"
	"repro/internal/topics"
)

func mustNew(t *testing.T, in *Input) *Recommender {
	t.Helper()
	r, err := New(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRankIsDistribution(t *testing.T) {
	ds := gen.RandomWith(40, 300, 1)
	r := mustNew(t, InputFromProfiles(ds.Graph))
	for ti := 0; ti < ds.Vocabulary().Len(); ti += 6 {
		rank := r.Rank(topics.ID(ti))
		sum := 0.0
		for _, v := range rank {
			if v < 0 {
				t.Fatalf("negative rank mass at topic %d", ti)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("topic %d rank mass = %g, want 1", ti, sum)
		}
	}
}

func TestRankCached(t *testing.T) {
	ds := gen.RandomWith(20, 100, 2)
	r := mustNew(t, InputFromProfiles(ds.Graph))
	a := r.Rank(0)
	b := r.Rank(0)
	if &a[0] != &b[0] {
		t.Error("Rank must cache per topic")
	}
}

func TestTopicalTeleportBias(t *testing.T) {
	// Star: everyone follows node 0 (topic "a") and node 1 (topic "b")
	// equally; on topic "a" node 0 must outrank node 1.
	vocab := topics.MustVocabulary([]string{"a", "b"})
	b := graph.NewBuilder(vocab, 10)
	b.SetNodeTopics(0, topics.NewSet(0))
	b.SetNodeTopics(1, topics.NewSet(1))
	for u := 2; u < 10; u++ {
		b.SetNodeTopics(graph.NodeID(u), topics.NewSet(0, 1))
		b.AddEdge(graph.NodeID(u), 0, topics.NewSet(0))
		b.AddEdge(graph.NodeID(u), 1, topics.NewSet(1))
	}
	g := b.MustFreeze()
	r := mustNew(t, InputFromProfiles(g))
	rank := r.Rank(0)
	if rank[0] <= rank[1] {
		t.Errorf("on topic a, node 0 (%g) must outrank node 1 (%g)", rank[0], rank[1])
	}
	rank = r.Rank(1)
	if rank[1] <= rank[0] {
		t.Errorf("on topic b, node 1 (%g) must outrank node 0 (%g)", rank[1], rank[0])
	}
}

func TestPopularityBias(t *testing.T) {
	// Two accounts on the same topic; one has 10× the followers. The
	// popular one must rank higher — the behaviour the paper's analysis
	// leans on.
	vocab := topics.MustVocabulary([]string{"a"})
	b := graph.NewBuilder(vocab, 30)
	b.SetNodeTopics(0, topics.NewSet(0))
	b.SetNodeTopics(1, topics.NewSet(0))
	for u := 2; u < 22; u++ {
		b.SetNodeTopics(graph.NodeID(u), topics.NewSet(0))
		b.AddEdge(graph.NodeID(u), 0, topics.NewSet(0))
	}
	b.AddEdge(22, 1, topics.NewSet(0))
	g := b.MustFreeze()
	r := mustNew(t, InputFromProfiles(g))
	rank := r.Rank(0)
	if rank[0] <= rank[1] {
		t.Errorf("popular account must outrank: %g vs %g", rank[0], rank[1])
	}
}

func TestGlobalNotPersonalized(t *testing.T) {
	ds := gen.RandomWith(30, 200, 4)
	r := mustNew(t, InputFromProfiles(ds.Graph))
	cands := []graph.NodeID{1, 2, 3, 4, 5}
	a := r.ScoreCandidates(7, 0, cands)
	b := r.ScoreCandidates(23, 0, cands)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TwitterRank must be independent of the query user")
		}
	}
}

func TestRecommendExcludesSelf(t *testing.T) {
	ds := gen.RandomWith(25, 150, 5)
	r := mustNew(t, InputFromProfiles(ds.Graph))
	for _, s := range r.Recommend(3, 0, 25) {
		if s.Node == 3 {
			t.Fatal("Recommend must exclude the query user")
		}
	}
	if r.Name() != "TwitterRank" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestNewValidation(t *testing.T) {
	ds := gen.RandomWith(10, 30, 6)
	in := InputFromProfiles(ds.Graph)
	bad := *in
	bad.Tweets = bad.Tweets[:3]
	if _, err := New(&bad, DefaultParams()); err == nil {
		t.Error("short Tweets must error")
	}
	bad2 := *in
	bad2.TopicDist = bad2.TopicDist[:7]
	if _, err := New(&bad2, DefaultParams()); err == nil {
		t.Error("short TopicDist must error")
	}
	p := DefaultParams()
	p.Gamma = 1.5
	if _, err := New(in, p); err == nil {
		t.Error("bad Gamma must error")
	}
	p = DefaultParams()
	p.MaxIters = 0
	if _, err := New(in, p); err == nil {
		t.Error("bad MaxIters must error")
	}
}

func TestDanglingNodes(t *testing.T) {
	// A graph where node 1 has no followees: its mass must teleport, and
	// the rank must still be a distribution.
	vocab := topics.MustVocabulary([]string{"a"})
	b := graph.NewBuilder(vocab, 3)
	b.SetNodeTopics(0, topics.NewSet(0))
	b.SetNodeTopics(1, topics.NewSet(0))
	b.SetNodeTopics(2, topics.NewSet(0))
	b.AddEdge(0, 1, topics.NewSet(0))
	b.AddEdge(2, 1, topics.NewSet(0))
	g := b.MustFreeze()
	r := mustNew(t, InputFromProfiles(g))
	rank := r.Rank(0)
	sum := 0.0
	for _, v := range rank {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("mass = %g with dangling node, want 1", sum)
	}
	if rank[1] <= rank[0] {
		t.Error("the followed account must accumulate rank")
	}
}

func TestEmptyTopicTeleportsUniformly(t *testing.T) {
	// No user has mass on topic... use a vocabulary with an unused topic.
	vocab := topics.MustVocabulary([]string{"a", "unused"})
	b := graph.NewBuilder(vocab, 4)
	for u := 0; u < 4; u++ {
		b.SetNodeTopics(graph.NodeID(u), topics.NewSet(0))
	}
	b.AddEdge(0, 1, topics.NewSet(0))
	g := b.MustFreeze()
	r := mustNew(t, InputFromProfiles(g))
	rank := r.Rank(1)
	sum := 0.0
	for _, v := range rank {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("unused-topic mass = %g, want 1", sum)
	}
}

func TestInputFromLDA(t *testing.T) {
	cfg := gen.DefaultTwitterConfig()
	cfg.Nodes = 300
	ds, err := gen.Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	profiles := make([]topics.Set, g.NumNodes())
	for u := range profiles {
		profiles[u] = g.NodeTopics(graph.NodeID(u))
	}
	tcfg := textgen.DefaultConfig()
	tcfg.PostsPerUserMin, tcfg.PostsPerUserMax = 4, 10
	corpus := textgen.Generate(g.Vocabulary(), profiles, tcfg)
	lcfg := lda.DefaultConfig(g.Vocabulary().Len())
	lcfg.Iterations = 20
	in, err := InputFromLDA(g, corpus, lcfg)
	if err != nil {
		t.Fatal(err)
	}
	T := g.Vocabulary().Len()
	if len(in.TopicDist) != g.NumNodes()*T {
		t.Fatalf("TopicDist size %d", len(in.TopicDist))
	}
	// Rows are distributions (users always have posts here).
	for u := 0; u < g.NumNodes(); u++ {
		sum := 0.0
		for _, p := range in.TopicDist[u*T : (u+1)*T] {
			if p < 0 {
				t.Fatal("negative topic mass")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("user %d DT sums to %g", u, sum)
		}
		if in.Tweets[u] != float64(len(corpus.Posts[u])) {
			t.Fatal("tweet counts must be actual post counts")
		}
	}
	// The LDA-driven matrix should put a user's dominant mass on a topic
	// of (or semantically near) their true profile for most users.
	sim := ds.Sim
	good := 0
	for u := 0; u < g.NumNodes(); u++ {
		row := in.TopicDist[u*T : (u+1)*T]
		best := 0
		for ti := 1; ti < T; ti++ {
			if row[ti] > row[best] {
				best = ti
			}
		}
		if sim.MaxSim(profiles[u], topics.ID(best)) >= 0.5 {
			good++
		}
	}
	if frac := float64(good) / float64(g.NumNodes()); frac < 0.7 {
		t.Errorf("only %.2f of users have LDA mass near their profile", frac)
	}
	// The input drives TwitterRank without error.
	r, err := New(in, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rank(0)) != g.NumNodes() {
		t.Fatal("rank vector wrong size")
	}
	// Mismatched corpus is rejected.
	small := textgen.Generate(g.Vocabulary(), profiles[:10], tcfg)
	if _, err := InputFromLDA(g, small, lcfg); err == nil {
		t.Error("mismatched corpus must error")
	}
}
