package userstudy

// FleissKappa measures inter-rater agreement for a panel that assigned
// categorical marks to a set of items: 1 means perfect agreement, 0 means
// exactly the agreement expected by chance, negative means systematic
// disagreement. User-study reports conventionally quote it so readers can
// judge how noisy the panel was — the paper's observation that raters
// fall back to middle marks on ambiguous topics shows up as low kappa on
// those topics.
//
// ratings[i][c] counts how many raters assigned category c to item i.
// Every item must have the same number of ratings n ≥ 2.
func FleissKappa(ratings [][]int) float64 {
	if len(ratings) == 0 {
		return 0
	}
	nItems := len(ratings)
	nCats := len(ratings[0])
	n := 0
	for _, c := range ratings[0] {
		n += c
	}
	if n < 2 {
		return 0
	}

	// Per-item agreement P_i and per-category marginals p_c.
	sumPi := 0.0
	pc := make([]float64, nCats)
	for _, row := range ratings {
		sq := 0
		for c, cnt := range row {
			sq += cnt * cnt
			pc[c] += float64(cnt)
		}
		sumPi += float64(sq-n) / float64(n*(n-1))
	}
	pBar := sumPi / float64(nItems)
	peBar := 0.0
	total := float64(nItems * n)
	for _, c := range pc {
		p := c / total
		peBar += p * p
	}
	if peBar == 1 {
		return 1 // every rating identical everywhere
	}
	return (pBar - peBar) / (1 - peBar)
}

// RatingMatrix collects a panel's marks for a set of (account, topic)
// items into the Fleiss input: one row per item, five columns for the
// 1..5 marks.
type RatingMatrix struct {
	rows map[itemKey][]int
}

type itemKey struct {
	account uint32
	topic   uint8
}

// NewRatingMatrix creates an empty collector.
func NewRatingMatrix() *RatingMatrix {
	return &RatingMatrix{rows: make(map[itemKey][]int)}
}

// Add records one rater's mark (1..5) for an item.
func (m *RatingMatrix) Add(account uint32, topic uint8, mark int) {
	if mark < 1 || mark > 5 {
		return
	}
	k := itemKey{account: account, topic: topic}
	row := m.rows[k]
	if row == nil {
		row = make([]int, 5)
		m.rows[k] = row
	}
	row[mark-1]++
}

// Kappa computes Fleiss' kappa over the collected items, skipping items
// whose rating count differs from the majority (all-equal counts are the
// normal case: every rater rates every item).
func (m *RatingMatrix) Kappa() float64 {
	if len(m.rows) == 0 {
		return 0
	}
	// Find the modal rating count.
	counts := map[int]int{}
	for _, row := range m.rows {
		n := 0
		for _, c := range row {
			n += c
		}
		counts[n]++
	}
	modal, best := 0, 0
	for n, k := range counts {
		if k > best {
			modal, best = n, k
		}
	}
	var ratings [][]int
	for _, row := range m.rows {
		n := 0
		for _, c := range row {
			n += c
		}
		if n == modal {
			ratings = append(ratings, row)
		}
	}
	return FleissKappa(ratings)
}
