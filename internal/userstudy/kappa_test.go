package userstudy

import (
	"math"
	"testing"

	"repro/internal/ranking"
	"repro/internal/topics"
)

func TestFleissKappaKnownCases(t *testing.T) {
	// Perfect agreement: every item unanimously rated.
	perfect := [][]int{
		{5, 0, 0, 0, 0},
		{0, 0, 5, 0, 0},
		{0, 0, 0, 0, 5},
	}
	if k := FleissKappa(perfect); math.Abs(k-1) > 1e-12 {
		t.Errorf("perfect agreement kappa = %g, want 1", k)
	}
	// The classic Fleiss (1971) example value: 10 items, 14 raters,
	// 5 categories, kappa ≈ 0.21 — use a simpler hand-checkable case:
	// two items, two raters, complete disagreement between items but
	// agreement within... kappa for
	//   item1: [2,0], item2: [0,2] → P_i = 1 each, p = (0.5, 0.5),
	//   Pe = 0.5 → kappa = (1-0.5)/(1-0.5) = 1.
	within := [][]int{{2, 0}, {0, 2}}
	if k := FleissKappa(within); math.Abs(k-1) > 1e-12 {
		t.Errorf("within-item agreement kappa = %g, want 1", k)
	}
	// Raters split on every item: P_i = 0.
	//   items: [1,1] each → Pbar = 0, Pe = 0.5 → kappa = -1.
	split := [][]int{{1, 1}, {1, 1}}
	if k := FleissKappa(split); math.Abs(k+1) > 1e-12 {
		t.Errorf("split kappa = %g, want -1", k)
	}
	// Degenerate inputs.
	if FleissKappa(nil) != 0 {
		t.Error("empty input kappa must be 0")
	}
	if FleissKappa([][]int{{1, 0}}) != 0 {
		t.Error("single-rater kappa must be 0")
	}
	// All mass on one category everywhere: pe = 1 → defined as 1.
	if k := FleissKappa([][]int{{3, 0}, {3, 0}}); k != 1 {
		t.Errorf("uniform-category kappa = %g, want 1", k)
	}
}

func TestRatingMatrix(t *testing.T) {
	m := NewRatingMatrix()
	// Two items, three raters each, unanimous.
	for r := 0; r < 3; r++ {
		m.Add(1, 0, 5)
		m.Add(2, 0, 1)
	}
	if k := m.Kappa(); math.Abs(k-1) > 1e-12 {
		t.Errorf("kappa = %g, want 1", k)
	}
	// Out-of-range marks are ignored.
	m.Add(1, 0, 0)
	m.Add(1, 0, 6)
	if k := m.Kappa(); math.Abs(k-1) > 1e-12 {
		t.Errorf("kappa after junk = %g, want 1", k)
	}
	if NewRatingMatrix().Kappa() != 0 {
		t.Error("empty matrix kappa must be 0")
	}
}

func TestRunReportsKappa(t *testing.T) {
	rec := fixedRec{name: "r", list: []ranking.Scored{{Node: 1, Score: 1}, {Node: 2, Score: 0.9}}}
	oracle := fixedOracle{1: 1, 2: 0}
	queries := []Query{{User: 0, Topic: 0}}
	// Near-noiseless panel: raters agree → high kappa.
	crisp := Run(Panel{Raters: 40, Noise: 0.05, Seed: 4}, oracle,
		[]ranking.Recommender{rec}, queries, 2, nil)[0]
	// Coin-flip doubtful panel: marks split between 2 and 3 → low kappa.
	fuzzy := Run(Panel{Raters: 40, Noise: 0.05, Seed: 4,
		Doubt: func(topics.ID) float64 { return 1 }}, oracle,
		[]ranking.Recommender{rec}, queries, 2, nil)[0]
	if crisp.Kappa < 0.8 {
		t.Errorf("crisp panel kappa = %.2f, want high", crisp.Kappa)
	}
	if fuzzy.Kappa > crisp.Kappa-0.3 {
		t.Errorf("doubtful panel kappa %.2f should be far below crisp %.2f", fuzzy.Kappa, crisp.Kappa)
	}
}
