// Package userstudy simulates the paper's two user-validation tasks
// (Section 5.3). Human panels are unobtainable here, so a rater model
// reproduces the judgment process the paper describes:
//
//   - raters perceive an account's true topical relevance (how on-topic
//     the account's published profile is, plus a mild quality factor) and
//     grade it 1..5 with noise;
//   - on ambiguous topics (the paper singles out "social", whose posts mix
//     with health or politics) doubtful raters default to the middle marks
//     2 or 3, compressing all methods toward ~2.7–2.9 — exactly the
//     behaviour reported for Figure 10;
//   - in the DBLP task (Table 3) a researcher judges whether a proposed
//     author "could have been cited regarding the past publications", so
//     perceived relevance also requires citation-neighborhood proximity —
//     the reason the popularity-driven TwitterRank collapses there.
package userstudy

import (
	"math"
	"math/rand/v2"

	"repro/internal/authority"
	"repro/internal/graph"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// Oracle scores the true relevance of an account for a topic in [0, 1].
type Oracle interface {
	Relevance(rater, account graph.NodeID, t topics.ID) float64
}

// TopicOracle is the Figure 10 (Twitter) relevance model: mostly topical
// match of the account's publisher profile against the queried topic, plus
// a global-authority quality factor.
type TopicOracle struct {
	G    *graph.Graph
	Auth *authority.Table
	Sim  *topics.SimMatrix
	// MatchWeight balances topical match against global authority
	// (default 0.75 when zero).
	MatchWeight float64
}

// Relevance ignores the rater (the blind test asks "is this account about
// topic t", not "is it relevant to me").
func (o *TopicOracle) Relevance(_, account graph.NodeID, t topics.ID) float64 {
	w := o.MatchWeight
	if w == 0 {
		w = 0.75
	}
	match := o.Sim.MaxSim(o.G.NodeTopics(account), t)
	global := 0.0
	if m := o.Auth.MaxFollowersOnTopic(t); m > 0 {
		_, lbl := o.G.In(account)
		cnt := 0
		for _, s := range lbl {
			if s.Has(t) {
				cnt++
			}
		}
		global = math.Log(1+float64(cnt)) / math.Log(1+float64(m))
	}
	return w*match + (1-w)*global
}

// ResearcherOracle is the Table 3 (DBLP) relevance model: the proposed
// author must both work on the researcher's topics and sit in the
// researcher's citation neighborhood ("could have been cited").
type ResearcherOracle struct {
	G   *graph.Graph
	Sim *topics.SimMatrix
	// MaxDist is the citation-hop horizon beyond which proximity is 0
	// (default 3 when zero).
	MaxDist int

	distCache map[graph.NodeID]map[graph.NodeID]int
}

// Relevance combines topical match with citation proximity.
func (o *ResearcherOracle) Relevance(rater, account graph.NodeID, t topics.ID) float64 {
	maxDist := o.MaxDist
	if maxDist == 0 {
		maxDist = 3
	}
	match := o.Sim.MaxSim(o.G.NodeTopics(account), t)
	// Also count topical match against the researcher's own profile: a
	// relevant citation target matches the researcher's area even if the
	// query topic is broad.
	var ownMatch float64
	o.G.NodeTopics(rater).ForEach(func(rt topics.ID) {
		if m := o.Sim.MaxSim(o.G.NodeTopics(account), rt); m > ownMatch {
			ownMatch = m
		}
	})
	prox := o.proximity(rater, account, maxDist)
	topical := math.Max(match, ownMatch)
	return 0.45*topical + 0.55*prox
}

func (o *ResearcherOracle) proximity(rater, account graph.NodeID, maxDist int) float64 {
	if o.distCache == nil {
		o.distCache = make(map[graph.NodeID]map[graph.NodeID]int)
	}
	dists, ok := o.distCache[rater]
	if !ok {
		dists = make(map[graph.NodeID]int)
		graph.BFSOut(o.G, rater, maxDist, func(v graph.NodeID, depth int) bool {
			dists[v] = depth
			return true
		})
		o.distCache[rater] = dists
	}
	d, reachable := dists[account]
	if !reachable || account == rater {
		return 0
	}
	return 1 - float64(d-1)/float64(maxDist)
}

// Panel models the rater pool.
type Panel struct {
	// Raters is the panel size (paper: 54 for Twitter, 47 for DBLP).
	Raters int
	// Noise is the standard deviation of per-rater mark jitter.
	Noise float64
	// Doubt maps a topic to the probability a rater is doubtful and falls
	// back to a middle mark (2 or 3). Nil means never doubtful.
	Doubt func(t topics.ID) float64
	// Seed drives rater randomness.
	Seed uint64
}

// Mark grades a single (rater, account, topic) with the paper's 1..5
// scale.
func (p *Panel) mark(r *rand.Rand, rel float64, t topics.ID) int {
	if p.Doubt != nil && r.Float64() < p.Doubt(t) {
		return 2 + r.IntN(2) // doubtful: 2 or 3
	}
	m := 1 + 4*rel + r.NormFloat64()*p.Noise
	mi := int(math.Round(m))
	if mi < 1 {
		mi = 1
	}
	if mi > 5 {
		mi = 5
	}
	return mi
}

// MethodResult aggregates one method's ratings.
type MethodResult struct {
	Method string
	// AvgByTopic is the mean mark per queried topic (Figure 10's bars).
	AvgByTopic map[topics.ID]float64
	// Avg is the overall mean mark (Table 3 row 1).
	Avg float64
	// HighMarks counts 4s and 5s (Table 3 row 2).
	HighMarks int
	// BestShare is the fraction of queries where this method's
	// recommendation set got the best average mark (Table 3 row 3).
	BestShare float64
	// Marks is the total number of marks given.
	Marks int
	// Kappa is Fleiss' inter-rater agreement over this method's rated
	// items; low values flag noisy/doubtful panels (the paper's
	// ambiguous-topic effect).
	Kappa float64
}

// Query is one validation item: recommendations are computed for this
// user on this topic.
type Query struct {
	User  graph.NodeID
	Topic topics.ID
}

// Run executes a blind test: for every query, each method proposes its
// top-k accounts (optionally filtered), the panel marks each proposal,
// and marks are aggregated per method. Rater assignment is
// round-robin: every query is rated by all raters' noise draws through
// the shared RNG, matching the averaging in the paper's figures.
func Run(p Panel, oracle Oracle, methods []ranking.Recommender, queries []Query, topK int, accept func(graph.NodeID) bool) []MethodResult {
	r := rand.New(rand.NewPCG(p.Seed, 0x9a7e15))
	results := make([]MethodResult, len(methods))
	for i, m := range methods {
		results[i] = MethodResult{Method: m.Name(), AvgByTopic: make(map[topics.ID]float64)}
	}
	sumByTopic := make([]map[topics.ID]float64, len(methods))
	cntByTopic := make([]map[topics.ID]int, len(methods))
	for i := range methods {
		sumByTopic[i] = make(map[topics.ID]float64)
		cntByTopic[i] = make(map[topics.ID]int)
	}
	sum := make([]float64, len(methods))
	bestWins := make([]int, len(methods))
	agreement := make([]*RatingMatrix, len(methods))
	for i := range agreement {
		agreement[i] = NewRatingMatrix()
	}

	for _, q := range queries {
		queryAvg := make([]float64, len(methods))
		queryCnt := make([]int, len(methods))
		for mi, m := range methods {
			recs := recommendFiltered(m, q, topK, accept)
			for _, rec := range recs {
				rel := oracle.Relevance(q.User, rec.Node, q.Topic)
				for rater := 0; rater < p.Raters; rater++ {
					mark := p.mark(r, rel, q.Topic)
					agreement[mi].Add(uint32(rec.Node), uint8(q.Topic), mark)
					sum[mi] += float64(mark)
					results[mi].Marks++
					if mark >= 4 {
						results[mi].HighMarks++
					}
					sumByTopic[mi][q.Topic] += float64(mark)
					cntByTopic[mi][q.Topic]++
					queryAvg[mi] += float64(mark)
					queryCnt[mi]++
				}
			}
		}
		// Best answer of this query.
		best, bestVal := -1, -1.0
		for mi := range methods {
			if queryCnt[mi] == 0 {
				continue
			}
			v := queryAvg[mi] / float64(queryCnt[mi])
			if v > bestVal {
				best, bestVal = mi, v
			}
		}
		if best >= 0 {
			bestWins[best]++
		}
	}

	for mi := range methods {
		if results[mi].Marks > 0 {
			results[mi].Avg = sum[mi] / float64(results[mi].Marks)
		}
		results[mi].Kappa = agreement[mi].Kappa()
		for t, s := range sumByTopic[mi] {
			results[mi].AvgByTopic[t] = s / float64(cntByTopic[mi][t])
		}
		if len(queries) > 0 {
			results[mi].BestShare = float64(bestWins[mi]) / float64(len(queries))
		}
	}
	return results
}

// recommendFiltered gets a method's top-k after the accept filter (e.g.
// the ≤100-citations cap of the DBLP study).
func recommendFiltered(m ranking.Recommender, q Query, topK int, accept func(graph.NodeID) bool) []ranking.Scored {
	if accept == nil {
		return m.Recommend(q.User, q.Topic, topK)
	}
	// Over-fetch, then filter.
	raw := m.Recommend(q.User, q.Topic, topK*20)
	out := make([]ranking.Scored, 0, topK)
	for _, s := range raw {
		if accept(s.Node) {
			out = append(out, s)
			if len(out) == topK {
				break
			}
		}
	}
	return out
}
