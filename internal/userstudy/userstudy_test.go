package userstudy

import (
	"testing"

	"repro/internal/authority"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// fixedRec recommends a fixed list regardless of the query.
type fixedRec struct {
	name string
	list []ranking.Scored
}

func (f fixedRec) Name() string { return f.name }
func (f fixedRec) ScoreCandidates(_ graph.NodeID, _ topics.ID, cands []graph.NodeID) []float64 {
	return make([]float64, len(cands))
}
func (f fixedRec) Recommend(_ graph.NodeID, _ topics.ID, n int) []ranking.Scored {
	if n > len(f.list) {
		n = len(f.list)
	}
	return f.list[:n]
}

// fixedOracle maps accounts to relevances.
type fixedOracle map[graph.NodeID]float64

func (o fixedOracle) Relevance(_, account graph.NodeID, _ topics.ID) float64 {
	return o[account]
}

func TestRunSeparatesGoodFromBad(t *testing.T) {
	good := fixedRec{name: "good", list: []ranking.Scored{{Node: 1, Score: 1}, {Node: 2, Score: 0.9}, {Node: 3, Score: 0.8}}}
	bad := fixedRec{name: "bad", list: []ranking.Scored{{Node: 7, Score: 1}, {Node: 8, Score: 0.9}, {Node: 9, Score: 0.8}}}
	oracle := fixedOracle{1: 1, 2: 0.95, 3: 0.9, 7: 0.05, 8: 0, 9: 0.1}
	panel := Panel{Raters: 20, Noise: 0.3, Seed: 1}
	queries := []Query{{User: 0, Topic: 0}, {User: 5, Topic: 0}}
	res := Run(panel, oracle, []ranking.Recommender{good, bad}, queries, 3, nil)
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	g, b := res[0], res[1]
	if g.Avg <= b.Avg {
		t.Errorf("good avg %.2f must beat bad avg %.2f", g.Avg, b.Avg)
	}
	if g.Avg < 4 || b.Avg > 2.5 {
		t.Errorf("marks not anchored: good %.2f bad %.2f", g.Avg, b.Avg)
	}
	if g.BestShare != 1 || b.BestShare != 0 {
		t.Errorf("best share: good %.2f bad %.2f", g.BestShare, b.BestShare)
	}
	if g.HighMarks <= b.HighMarks {
		t.Error("good must collect more 4/5 marks")
	}
	if g.Marks != 2*3*20 {
		t.Errorf("marks = %d, want 120", g.Marks)
	}
}

func TestDoubtCompressesMarks(t *testing.T) {
	rec := fixedRec{name: "r", list: []ranking.Scored{{Node: 1, Score: 1}}}
	oracle := fixedOracle{1: 1}
	certain := Panel{Raters: 200, Noise: 0.2, Seed: 2}
	doubting := Panel{Raters: 200, Noise: 0.2, Seed: 2, Doubt: func(topics.ID) float64 { return 1 }}
	queries := []Query{{User: 0, Topic: 0}}
	a := Run(certain, oracle, []ranking.Recommender{rec}, queries, 1, nil)[0]
	d := Run(doubting, oracle, []ranking.Recommender{rec}, queries, 1, nil)[0]
	if a.Avg < 4.5 {
		t.Errorf("certain raters should give ~5: %.2f", a.Avg)
	}
	if d.Avg < 2 || d.Avg > 3 {
		t.Errorf("doubtful raters must give 2..3: %.2f", d.Avg)
	}
}

func TestAcceptFilter(t *testing.T) {
	rec := fixedRec{name: "r", list: []ranking.Scored{
		{Node: 1, Score: 1}, {Node: 2, Score: 0.9}, {Node: 3, Score: 0.8}, {Node: 4, Score: 0.7},
	}}
	oracle := fixedOracle{1: 1, 2: 1, 3: 0, 4: 1}
	panel := Panel{Raters: 10, Noise: 0.1, Seed: 3}
	queries := []Query{{User: 0, Topic: 0}}
	res := Run(panel, oracle, []ranking.Recommender{rec}, queries, 2,
		func(v graph.NodeID) bool { return v != 1 })
	// Accepted top-2 are nodes 2 and 3 (1 filtered); with 3 rated high and
	// 3 rated low the average sits between.
	if res[0].Marks != 2*10 {
		t.Errorf("marks = %d, want 20", res[0].Marks)
	}
}

func TestTopicOracleOrdering(t *testing.T) {
	ds := gen.RandomWith(60, 600, 9)
	auth := authority.Compute(ds.Graph)
	o := &TopicOracle{G: ds.Graph, Auth: auth, Sim: ds.Sim}
	// An account publishing on the queried topic must beat one that does
	// not (same popularity scale).
	var onTopic, offTopic graph.NodeID
	found := 0
	for u := 0; u < ds.Graph.NumNodes() && found < 2; u++ {
		p := ds.Graph.NodeTopics(graph.NodeID(u))
		if p.Has(0) && onTopic == 0 {
			onTopic = graph.NodeID(u)
			found++
		}
		if !p.Has(0) && ds.Sim.MaxSim(p, 0) < 0.6 && offTopic == 0 {
			offTopic = graph.NodeID(u)
			found++
		}
	}
	if found < 2 {
		t.Skip("random graph lacks the two account kinds")
	}
	if o.Relevance(0, onTopic, 0) <= o.Relevance(0, offTopic, 0) {
		t.Errorf("on-topic account must be more relevant: %g vs %g",
			o.Relevance(0, onTopic, 0), o.Relevance(0, offTopic, 0))
	}
}

func TestResearcherOracleProximity(t *testing.T) {
	// Chain 0→1→2→3→4...; near authors are more relevant than far ones
	// with identical topical profiles.
	vocab := topics.MustVocabulary([]string{"db"})
	b := graph.NewBuilder(vocab, 6)
	for u := 0; u < 5; u++ {
		b.AddEdge(graph.NodeID(u), graph.NodeID(u+1), topics.NewSet(0))
		b.SetNodeTopics(graph.NodeID(u), topics.NewSet(0))
	}
	b.SetNodeTopics(5, topics.NewSet(0))
	g := b.MustFreeze()
	tax := topics.NewTaxonomyBuilder(vocab).Topic("db", "root").MustBuild()
	o := &ResearcherOracle{G: g, Sim: tax.SimMatrix()}
	near := o.Relevance(0, 1, 0)
	far := o.Relevance(0, 5, 0) // 5 hops away, beyond MaxDist 3
	if near <= far {
		t.Errorf("near author %.3f must beat far author %.3f", near, far)
	}
	if o.Relevance(0, 0, 0) >= near {
		t.Error("self must not be highly relevant")
	}
	// Cache path: second query hits the cached BFS.
	if got := o.Relevance(0, 1, 0); got != near {
		t.Error("cached relevance differs")
	}
}
