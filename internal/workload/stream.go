package workload

import (
	"fmt"
	"time"

	"repro/internal/dynamic"
)

// Open-loop streaming driver. The query harness in workload.go is
// closed-loop — the next request waits for the previous answer — which
// measures latency but silently slows its offered rate when the system
// slows down, hiding overload. This driver is open-loop: update events
// are offered on a fixed wall-clock schedule derived from the target
// rate regardless of how the system is doing, so a system that cannot
// keep up visibly rejects (backpressure) instead of invisibly slowing
// the generator. Queries interleave with the update stream at a
// configurable ratio, modelling the sustained mixed read/write load of
// a live micro-blogging system.

// StreamConfig shapes one open-loop run.
type StreamConfig struct {
	// Rate is the target offered update rate in updates/second.
	// <= 0 offers as fast as possible (no pacing).
	Rate float64
	// QueryEvery interleaves one query per QueryEvery offered updates
	// (0 = updates only).
	QueryEvery int
}

// StreamReport is the accounting of one open-loop run. Conservation
// holds exactly: Offered == Accepted + Rejected + Failed.
type StreamReport struct {
	// Offered counts scheduled update events; Accepted those the sink
	// admitted, Rejected the explicit backpressure rejections, Failed
	// the hard errors (anything that is neither acceptance nor
	// backpressure).
	Offered, Accepted, Rejected, Failed int
	// Queries counts interleaved query calls.
	Queries int
	// Wall is the run's duration.
	Wall time.Duration
	// OfferedRate and AcceptedRate are events/second over Wall: how
	// hard the driver pushed, and how much the system actually took.
	OfferedRate, AcceptedRate float64
}

// String renders one report row.
func (r StreamReport) String() string {
	return fmt.Sprintf("offered %d (%.0f/s)  accepted %d (%.0f/s)  rejected %d  failed %d  queries %d  wall %s",
		r.Offered, r.OfferedRate, r.Accepted, r.AcceptedRate, r.Rejected, r.Failed, r.Queries,
		r.Wall.Round(time.Millisecond))
}

// RunStream offers every update on the open-loop schedule. offer is the
// write path (e.g. a Pipeline's Enqueue): a nil return is acceptance, a
// backpressure=true classification counts as rejection, anything else
// as failure. query, when non-nil, is called synchronously per
// QueryEvery updates with the count of updates offered so far. The
// driver never retries — an open-loop generator models arrivals, and a
// rejected arrival is lost to the system, which is exactly what the
// staleness experiments need to account for.
func RunStream(updates []dynamic.Update, offer func(dynamic.Update) error,
	backpressure func(error) bool, query func(offered int), cfg StreamConfig) StreamReport {

	var rep StreamReport
	start := time.Now()
	var spacing time.Duration
	if cfg.Rate > 0 {
		spacing = time.Duration(float64(time.Second) / cfg.Rate)
	}
	for i, up := range updates {
		if spacing > 0 {
			// Open loop: event i is due at start + i*spacing. Sleep only
			// when ahead of schedule; when behind, offer immediately and
			// let the backlog burst out (the schedule, not the system,
			// owns the arrival times).
			due := start.Add(time.Duration(i) * spacing)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		rep.Offered++
		switch err := offer(up); {
		case err == nil:
			rep.Accepted++
		case backpressure != nil && backpressure(err):
			rep.Rejected++
		default:
			rep.Failed++
		}
		if cfg.QueryEvery > 0 && query != nil && rep.Offered%cfg.QueryEvery == 0 {
			query(rep.Offered)
			rep.Queries++
		}
	}
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.OfferedRate = float64(rep.Offered) / rep.Wall.Seconds()
		rep.AcceptedRate = float64(rep.Accepted) / rep.Wall.Seconds()
	}
	return rep
}
