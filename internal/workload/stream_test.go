package workload

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dynamic"
)

func TestRunStreamAccounting(t *testing.T) {
	updates := make([]dynamic.Update, 100)
	errFull := errors.New("full")
	errHard := errors.New("hard")
	i := 0
	offer := func(dynamic.Update) error {
		i++
		switch {
		case i%10 == 0:
			return errFull
		case i%25 == 0:
			return errHard
		default:
			return nil
		}
	}
	queried := 0
	rep := RunStream(updates, offer, func(err error) bool { return errors.Is(err, errFull) },
		func(off int) { queried++ }, StreamConfig{QueryEvery: 20})
	if rep.Offered != 100 {
		t.Fatalf("offered %d, want 100", rep.Offered)
	}
	if rep.Offered != rep.Accepted+rep.Rejected+rep.Failed {
		t.Fatalf("conservation violated: %+v", rep)
	}
	if rep.Rejected != 10 {
		t.Fatalf("rejected %d, want 10", rep.Rejected)
	}
	if rep.Failed != 2 { // i=25, 75 (50 and 100 hit the %10 case first)
		t.Fatalf("failed %d, want 2", rep.Failed)
	}
	if rep.Queries != 5 || queried != 5 {
		t.Fatalf("queries %d/%d, want 5", rep.Queries, queried)
	}
}

func TestRunStreamPacesOpenLoop(t *testing.T) {
	updates := make([]dynamic.Update, 50)
	rep := RunStream(updates, func(dynamic.Update) error { return nil }, nil, nil,
		StreamConfig{Rate: 5000})
	// 50 events at 5000/s should take ~10ms; allow generous slack but
	// prove pacing happened at all (an unpaced loop finishes in ~µs).
	if rep.Wall < 5*time.Millisecond {
		t.Fatalf("stream of 50 events at 5000/s finished in %s: no pacing", rep.Wall)
	}
	if rep.Accepted != 50 {
		t.Fatalf("accepted %d, want 50", rep.Accepted)
	}
}
