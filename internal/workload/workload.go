// Package workload generates recommendation query streams and measures a
// recommender's service-level behaviour (throughput and latency
// percentiles). The paper motivates the landmark approximation with the
// volume of searches micro-blogging systems face (24 billion/month on
// Twitter in 2012); this harness quantifies how many queries per second
// each method sustains and with what tail latency.
//
// Queries follow the realistic skew of such systems: users are drawn
// uniformly among sufficiently active accounts, topics by their biased
// popularity (the Figure 3 distribution), so popular topics dominate the
// stream exactly as they dominate real search traffic.
package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// Query is one recommendation request.
type Query struct {
	User  graph.NodeID
	Topic topics.ID
	TopN  int
}

// Config shapes the query stream.
type Config struct {
	// Queries is the stream length.
	Queries int
	// TopN requested per query.
	TopN int
	// MinOutDegree filters query users to active accounts.
	MinOutDegree int
	// TopicBias is the Zipf exponent over topics (0 = uniform).
	TopicBias float64
	// Concurrency is the number of in-flight workers when running the
	// stream (1 = sequential).
	Concurrency int
	// Seed drives the stream.
	Seed uint64
}

// DefaultConfig returns a modest stream.
func DefaultConfig() Config {
	return Config{Queries: 200, TopN: 10, MinOutDegree: 3, TopicBias: 1.2, Concurrency: 1, Seed: 1}
}

// Generate materializes the query stream for a graph.
func Generate(g graph.View, cfg Config) ([]Query, error) {
	r := rand.New(rand.NewPCG(cfg.Seed, 0x10ad))
	var pool []graph.NodeID
	for u := 0; u < g.NumNodes(); u++ {
		if g.OutDegree(graph.NodeID(u)) >= cfg.MinOutDegree {
			pool = append(pool, graph.NodeID(u))
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload: no users with out-degree >= %d", cfg.MinOutDegree)
	}
	weights := topics.Popularity(g.Vocabulary(), cfg.TopicBias)
	if cfg.TopicBias == 0 {
		for i := range weights {
			weights[i] = 1 / float64(len(weights))
		}
	}
	out := make([]Query, cfg.Queries)
	for i := range out {
		out[i] = Query{
			User:  pool[r.IntN(len(pool))],
			Topic: drawTopic(r, weights),
			TopN:  cfg.TopN,
		}
	}
	return out, nil
}

func drawTopic(r *rand.Rand, weights []float64) topics.ID {
	x := r.Float64()
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return topics.ID(i)
		}
	}
	return topics.ID(len(weights) - 1)
}

// Report is the measured service behaviour of one recommender over one
// stream.
type Report struct {
	Method   string
	Queries  int
	Wall     time.Duration
	QPS      float64
	P50, P95 time.Duration
	P99, Max time.Duration
	// EmptyResults counts queries that returned nothing.
	EmptyResults int
}

// Run plays the stream against the recommender with the configured
// concurrency and collects latency percentiles.
func Run(rec ranking.Recommender, queries []Query, concurrency int) Report {
	if concurrency < 1 {
		concurrency = 1
	}
	lat := make([]time.Duration, len(queries))
	empty := make([]bool, len(queries))
	start := time.Now()
	var wg sync.WaitGroup
	// Atomic work-stealing counter instead of a channel: an unbuffered
	// send/recv pair per query is measurable overhead against the
	// sub-millisecond methods this harness compares.
	var next atomic.Int64
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				t0 := time.Now()
				res := rec.Recommend(q.User, q.Topic, q.TopN)
				lat[i] = time.Since(t0)
				empty[i] = len(res) == 0
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)))
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	rep := Report{
		Method:  rec.Name(),
		Queries: len(queries),
		Wall:    wall,
		P50:     pct(0.50),
		P95:     pct(0.95),
		P99:     pct(0.99),
	}
	if len(lat) > 0 {
		rep.Max = lat[len(lat)-1]
	}
	if wall > 0 {
		rep.QPS = float64(len(queries)) / wall.Seconds()
	}
	for _, e := range empty {
		if e {
			rep.EmptyResults++
		}
	}
	return rep
}

// String renders one report row.
func (r Report) String() string {
	return fmt.Sprintf("%-22s %6d q %10.0f q/s  p50 %-10s p95 %-10s p99 %-10s max %-10s empty %d",
		r.Method, r.Queries, r.QPS,
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond), r.EmptyResults)
}
