package workload

import (
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ranking"
	"repro/internal/topics"
)

func TestGenerate(t *testing.T) {
	ds := gen.RandomWith(80, 800, 1)
	cfg := DefaultConfig()
	cfg.Queries = 100
	qs, err := Generate(ds.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 100 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if ds.Graph.OutDegree(q.User) < cfg.MinOutDegree {
			t.Fatalf("query user %d below activity floor", q.User)
		}
		if int(q.Topic) >= ds.Vocabulary().Len() {
			t.Fatalf("topic %d out of range", q.Topic)
		}
		if q.TopN != cfg.TopN {
			t.Fatal("TopN not propagated")
		}
	}
	// Deterministic under the seed.
	qs2, _ := Generate(ds.Graph, cfg)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("stream not deterministic")
		}
	}
}

func TestGenerateTopicBias(t *testing.T) {
	cfg0 := gen.DefaultTwitterConfig()
	cfg0.Nodes = 500
	ds, err := gen.Twitter(cfg0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Queries = 3000
	qs, err := Generate(ds.Graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ds.Vocabulary().Len())
	for _, q := range qs {
		counts[q.Topic]++
	}
	tech := counts[ds.Vocabulary().MustLookup("technology")]
	social := counts[ds.Vocabulary().MustLookup("social")]
	if tech <= 3*social {
		t.Errorf("biased stream expected: tech %d vs social %d", tech, social)
	}
}

func TestGenerateNoActiveUsers(t *testing.T) {
	ds := gen.RandomWith(10, 5, 2)
	cfg := DefaultConfig()
	cfg.MinOutDegree = 100
	if _, err := Generate(ds.Graph, cfg); err == nil {
		t.Error("impossible activity floor must error")
	}
}

// sleepyRec waits a fixed time per query so percentiles are predictable.
type sleepyRec struct{ d time.Duration }

func (s sleepyRec) Name() string { return "sleepy" }
func (s sleepyRec) ScoreCandidates(graph.NodeID, topics.ID, []graph.NodeID) []float64 {
	return nil
}
func (s sleepyRec) Recommend(graph.NodeID, topics.ID, int) []ranking.Scored {
	time.Sleep(s.d)
	return []ranking.Scored{{Node: 1, Score: 1}}
}

func TestRunMeasures(t *testing.T) {
	qs := make([]Query, 30)
	for i := range qs {
		qs[i] = Query{User: 0, Topic: 0, TopN: 1}
	}
	rep := Run(sleepyRec{d: 2 * time.Millisecond}, qs, 1)
	if rep.Queries != 30 || rep.EmptyResults != 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.P50 < time.Millisecond {
		t.Errorf("p50 = %s, expected ≈2ms", rep.P50)
	}
	if rep.P99 < rep.P50 {
		t.Error("p99 < p50")
	}
	if rep.QPS <= 0 || rep.QPS > 1000 {
		t.Errorf("QPS = %.0f implausible for 2ms sequential queries", rep.QPS)
	}
	// Concurrency raises throughput for a sleep-bound recommender.
	rep4 := Run(sleepyRec{d: 2 * time.Millisecond}, qs, 4)
	if rep4.QPS <= rep.QPS {
		t.Errorf("4-way QPS %.0f should beat sequential %.0f", rep4.QPS, rep.QPS)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

// emptyRec returns nothing, exercising the EmptyResults counter.
type emptyRec struct{}

func (emptyRec) Name() string { return "empty" }
func (emptyRec) ScoreCandidates(graph.NodeID, topics.ID, []graph.NodeID) []float64 {
	return nil
}
func (emptyRec) Recommend(graph.NodeID, topics.ID, int) []ranking.Scored { return nil }

func TestRunCountsEmpty(t *testing.T) {
	rep := Run(emptyRec{}, []Query{{User: 0, Topic: 0, TopN: 1}}, 1)
	if rep.EmptyResults != 1 {
		t.Errorf("empty results = %d", rep.EmptyResults)
	}
}
