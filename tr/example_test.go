package tr_test

import (
	"fmt"

	"repro/tr"
)

// Example shows the library's documented entry point: build a labeled
// follow graph, create a System and ask for recommendations.
func Example() {
	tax := tr.WebTaxonomy()
	vocab := tax.Vocabulary()
	tech := vocab.MustLookup("technology")

	// 0 follows 1; 1 follows 3; 2 follows both 1 and 3. Account 3
	// publishes on technology and is two hops from account 0.
	b := tr.NewGraphBuilder(vocab, 4)
	b.SetNodeTopics(1, tr.TopicsOf(tech))
	b.SetNodeTopics(3, tr.TopicsOf(tech))
	b.AddEdge(0, 1, tr.TopicsOf(tech))
	b.AddEdge(1, 3, tr.TopicsOf(tech))
	b.AddEdge(2, 1, tr.TopicsOf(tech))
	b.AddEdge(2, 3, tr.TopicsOf(tech))
	g, err := b.Freeze()
	if err != nil {
		panic(err)
	}

	sys, err := tr.NewSystem(g, tax, tr.DefaultOptions())
	if err != nil {
		panic(err)
	}
	recs, err := sys.Recommend(0, tech, 3)
	if err != nil {
		panic(err)
	}
	for i, r := range recs {
		fmt.Printf("%d. account %d\n", i+1, r.Node)
	}
	// Output:
	// 1. account 3
}
