// Package tr is the public API of the repository: the Tr topical
// user-recommendation score of "Finding Users of Interest in
// Micro-blogging Systems" (EDBT 2016) with its landmark-based approximate
// computation, ready to embed in an application.
//
// The package re-exports the building blocks (labeled graphs, topic
// taxonomies, scoring parameters) and adds System, a turnkey facade that
// wires them together:
//
//	// Describe the topics and the follow graph.
//	tax := tr.WebTaxonomy()
//	b := tr.NewGraphBuilder(tax.Vocabulary(), 3)
//	tech := tax.Vocabulary().MustLookup("technology")
//	b.SetNodeTopics(1, tr.TopicsOf(tech))
//	b.AddEdge(0, 1, tr.TopicsOf(tech)) // 0 follows 1 about technology
//	b.AddEdge(2, 1, tr.TopicsOf(tech))
//	g, _ := b.Freeze()
//
//	// Build the system and recommend.
//	sys, _ := tr.NewSystem(g, tax, tr.DefaultOptions())
//	recs, _ := sys.Recommend(0, tech, 10)
//
// For large graphs, call BuildIndex once and queries switch to the
// landmark approximation (orders of magnitude faster, see the paper's
// Section 4); Save/LoadIndex persist the preprocessing.
package tr

import (
	"fmt"
	"io"

	"repro/internal/authority"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/landmark"
	"repro/internal/ranking"
	"repro/internal/topics"
)

// Re-exported core types. External code uses these aliases without
// importing the internal packages.
type (
	// Graph is the frozen labeled follow graph.
	Graph = graph.Graph
	// GraphBuilder assembles a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies an account.
	NodeID = graph.NodeID
	// Edge is one follow relationship with its topic label.
	Edge = graph.Edge
	// Topic identifies a topic within a vocabulary.
	Topic = topics.ID
	// TopicSet is a set of topics.
	TopicSet = topics.Set
	// Vocabulary is the ordered topic list.
	Vocabulary = topics.Vocabulary
	// Taxonomy is the topic tree behind Wu-Palmer similarity.
	Taxonomy = topics.Taxonomy
	// Params are the scoring parameters (β, α, depth, tolerance).
	Params = core.Params
	// Scored is one recommendation with its score.
	Scored = ranking.Scored
	// Recommender is the interface every method implements.
	Recommender = ranking.Recommender
	// Strategy names a landmark selection strategy.
	Strategy = landmark.Strategy
)

// Re-exported constructors and defaults.
var (
	// NewGraphBuilder starts a graph over a vocabulary.
	NewGraphBuilder = graph.NewBuilder
	// ReadGraph loads a graph written by Graph.WriteTo.
	ReadGraph = graph.ReadGraph
	// NewVocabulary builds a topic vocabulary.
	NewVocabulary = topics.NewVocabulary
	// WebTaxonomy is the 18-topic web taxonomy used for Twitter-like data.
	WebTaxonomy = topics.WebTaxonomy
	// CSTaxonomy is the research-area taxonomy used for DBLP-like data.
	CSTaxonomy = topics.CSTaxonomy
	// TaxonomyFor resolves the right taxonomy for a vocabulary.
	TaxonomyFor = topics.TaxonomyFor
	// DefaultParams returns the paper's scoring parameters.
	DefaultParams = core.DefaultParams
	// TopicsOf builds a TopicSet from ids.
	TopicsOf = topics.NewSet
)

// Landmark selection strategies (Table 4 of the paper).
var (
	SelectRandom  = landmark.Random
	SelectInDeg   = landmark.InDeg
	SelectOutDeg  = landmark.OutDeg
	SelectCentral = landmark.Central
	// Strategies lists all eleven.
	Strategies = landmark.Strategies
)

// Options configures a System.
type Options struct {
	// Params are the scoring parameters; zero value means DefaultParams.
	Params Params
	// IndexStrategy selects landmarks when BuildIndex is called with
	// k > 0 (default: In-Deg, the strategy meeting the most landmarks per
	// query in the paper's Table 6).
	IndexStrategy Strategy
	// IndexTopN bounds the per-topic lists kept per landmark (default
	// 1000, the paper's best-quality setting).
	IndexTopN int
	// QueryDepth is the approximate query exploration depth (default 2,
	// the paper's setting).
	QueryDepth int
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{
		Params:        core.DefaultParams(),
		IndexStrategy: landmark.InDeg,
		IndexTopN:     1000,
		QueryDepth:    2,
	}
}

// System ties a graph, its authority table, the similarity matrix and an
// optional landmark index into one recommendation service. A System is
// immutable after construction (BuildIndex/LoadIndex excepted, which must
// not race with queries).
type System struct {
	g     *Graph
	tax   *Taxonomy
	opts  Options
	eng   *core.Engine
	exact *core.Recommender
	store *landmark.Store
	appr  *landmark.Approx
}

// NewSystem computes authority scores and the similarity matrix and
// readies exact recommendations. Call BuildIndex afterwards to enable the
// fast approximate path.
func NewSystem(g *Graph, tax *Taxonomy, opts Options) (*System, error) {
	if g == nil || tax == nil {
		return nil, fmt.Errorf("tr: graph and taxonomy are required")
	}
	if tax.Vocabulary().Len() != g.Vocabulary().Len() {
		return nil, fmt.Errorf("tr: taxonomy covers %d topics, graph vocabulary has %d",
			tax.Vocabulary().Len(), g.Vocabulary().Len())
	}
	if opts.Params.Beta == 0 {
		opts.Params = core.DefaultParams()
	}
	if opts.IndexTopN == 0 {
		opts.IndexTopN = 1000
	}
	if opts.QueryDepth == 0 {
		opts.QueryDepth = 2
	}
	if opts.IndexStrategy == "" {
		opts.IndexStrategy = landmark.InDeg
	}
	eng, err := core.NewEngine(g, authority.Compute(g), tax.SimMatrix(), opts.Params)
	if err != nil {
		return nil, err
	}
	return &System{
		g:     g,
		tax:   tax,
		opts:  opts,
		eng:   eng,
		exact: core.NewRecommender(eng, core.WithExcludeFollowed()),
	}, nil
}

// Graph returns the served graph.
func (s *System) Graph() *Graph { return s.g }

// Vocabulary returns the topic vocabulary.
func (s *System) Vocabulary() *Vocabulary { return s.g.Vocabulary() }

// HasIndex reports whether the landmark index is available.
func (s *System) HasIndex() bool { return s.appr != nil }

// BuildIndex selects k landmarks and runs the preprocessing step
// (Algorithm 1 from every landmark). Afterwards Recommend uses the
// approximate computation.
func (s *System) BuildIndex(k int) error {
	selCfg := landmark.DefaultSelectConfig()
	low, high := graph.InDegreePercentileCutoffs(s.g, 0.25)
	selCfg.MinFollow, selCfg.MaxFollow = low, high
	selCfg.MinPublish, selCfg.MaxPublish = low, high
	lms, err := landmark.Select(s.g, s.opts.IndexStrategy, k, selCfg)
	if err != nil {
		return err
	}
	store, _ := landmark.Preprocess(s.eng, lms, landmark.PreprocessConfig{TopN: s.opts.IndexTopN})
	return s.adoptStore(store)
}

func (s *System) adoptStore(store *landmark.Store) error {
	appr, err := landmark.NewApprox(s.eng, store, s.opts.QueryDepth)
	if err != nil {
		return err
	}
	s.store, s.appr = store, appr
	return nil
}

// SaveIndex persists the landmark index.
func (s *System) SaveIndex(w io.Writer) error {
	if s.store == nil {
		return fmt.Errorf("tr: no index built")
	}
	_, err := s.store.WriteTo(w)
	return err
}

// LoadIndex adopts a previously saved landmark index.
func (s *System) LoadIndex(r io.Reader) error {
	store, err := landmark.ReadStore(r)
	if err != nil {
		return err
	}
	return s.adoptStore(store)
}

// Recommend returns the top-n accounts for user u on topic t, using the
// landmark index when one is built and the exact computation otherwise.
// Accounts u already follows are never recommended.
func (s *System) Recommend(u NodeID, t Topic, n int) ([]Scored, error) {
	if err := s.checkQuery(u, t); err != nil {
		return nil, err
	}
	if s.appr != nil {
		// Over-fetch so filtering the already-followed still fills n.
		raw := s.appr.Recommend(u, t, n+s.g.OutDegree(u))
		out := make([]Scored, 0, n)
		for _, sc := range raw {
			if sc.Node == u || s.g.HasEdge(u, sc.Node) {
				continue
			}
			out = append(out, sc)
			if len(out) == n {
				break
			}
		}
		return out, nil
	}
	return s.exact.Recommend(u, t, n), nil
}

// RecommendExact always runs the exact convergence computation.
func (s *System) RecommendExact(u NodeID, t Topic, n int) ([]Scored, error) {
	if err := s.checkQuery(u, t); err != nil {
		return nil, err
	}
	return s.exact.Recommend(u, t, n), nil
}

// RecommendQuery answers a weighted multi-topic query (the paper's final
// score: a weighted linear combination over the query topics).
func (s *System) RecommendQuery(u NodeID, query map[Topic]float64, n int) ([]Scored, error) {
	if int(u) >= s.g.NumNodes() {
		return nil, fmt.Errorf("tr: unknown user %d", u)
	}
	if len(query) == 0 {
		return nil, fmt.Errorf("tr: empty query")
	}
	qts := make([]core.QueryTopic, 0, len(query))
	for t, w := range query {
		if int(t) >= s.Vocabulary().Len() {
			return nil, fmt.Errorf("tr: unknown topic %d", t)
		}
		qts = append(qts, core.QueryTopic{Topic: t, Weight: w})
	}
	return s.exact.RecommendQuery(u, qts, n), nil
}

// Score returns the exact σ(u, v, t) between two specific accounts.
func (s *System) Score(u, v NodeID, t Topic) (float64, error) {
	if err := s.checkQuery(u, t); err != nil {
		return 0, err
	}
	if int(v) >= s.g.NumNodes() {
		return 0, fmt.Errorf("tr: unknown user %d", v)
	}
	x := s.eng.Explore(u, []Topic{t}, 0)
	return x.Sigma(v, 0), nil
}

func (s *System) checkQuery(u NodeID, t Topic) error {
	if int(u) >= s.g.NumNodes() {
		return fmt.Errorf("tr: unknown user %d", u)
	}
	if int(t) >= s.Vocabulary().Len() {
		return fmt.Errorf("tr: unknown topic %d", t)
	}
	return nil
}
