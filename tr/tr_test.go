package tr_test

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/tr"
)

func buildSystem(t *testing.T, index int) (*tr.System, tr.Topic) {
	t.Helper()
	cfg := gen.DefaultTwitterConfig()
	cfg.Nodes = 800
	cfg.Seed = 21
	ds, err := gen.Twitter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tr.NewSystem(ds.Graph, ds.Taxonomy, tr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if index > 0 {
		if err := sys.BuildIndex(index); err != nil {
			t.Fatal(err)
		}
	}
	return sys, sys.Vocabulary().MustLookup("technology")
}

func TestSystemExactRecommend(t *testing.T) {
	sys, tech := buildSystem(t, 0)
	if sys.HasIndex() {
		t.Fatal("no index was requested")
	}
	recs, err := sys.Recommend(3, tech, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, s := range recs {
		if s.Node == 3 {
			t.Fatal("self recommended")
		}
		if sys.Graph().HasEdge(3, s.Node) {
			t.Fatal("already-followed account recommended")
		}
	}
	// Score is consistent with the ranking.
	s0, err := sys.Score(3, recs[0].Node, tech)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != recs[0].Score {
		t.Errorf("Score = %g, ranked %g", s0, recs[0].Score)
	}
}

func TestSystemIndexedRecommend(t *testing.T) {
	sys, tech := buildSystem(t, 12)
	if !sys.HasIndex() {
		t.Fatal("index missing")
	}
	approx, err := sys.Recommend(3, tech, 10)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sys.RecommendExact(3, tech, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) == 0 || len(exact) == 0 {
		t.Fatal("empty recommendations")
	}
	// The two rankings must overlap substantially.
	in := map[tr.NodeID]bool{}
	for _, s := range exact {
		in[s.Node] = true
	}
	hit := 0
	for _, s := range approx {
		if in[s.Node] {
			hit++
		}
	}
	if float64(hit)/float64(len(exact)) < 0.4 {
		t.Errorf("approximate overlap %d/%d too low", hit, len(exact))
	}
}

func TestSystemIndexRoundTrip(t *testing.T) {
	sys, tech := buildSystem(t, 8)
	var buf bytes.Buffer
	if err := sys.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	before, err := sys.Recommend(5, tech, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadIndex(&buf); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Recommend(5, tech, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Fatal("reloaded index changed results")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("reloaded index changed results")
		}
	}
}

func TestSystemMultiTopicQuery(t *testing.T) {
	sys, tech := buildSystem(t, 0)
	science := sys.Vocabulary().MustLookup("science")
	recs, err := sys.RecommendQuery(3, map[tr.Topic]float64{tech: 0.7, science: 0.3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("multi-topic query empty")
	}
	if _, err := sys.RecommendQuery(3, nil, 5); err == nil {
		t.Error("empty query must error")
	}
}

func TestSystemValidation(t *testing.T) {
	sys, tech := buildSystem(t, 0)
	if _, err := sys.Recommend(99999, tech, 5); err == nil {
		t.Error("unknown user must error")
	}
	if _, err := sys.Recommend(1, tr.Topic(200), 5); err == nil {
		t.Error("unknown topic must error")
	}
	if err := sys.SaveIndex(&bytes.Buffer{}); err == nil {
		t.Error("SaveIndex without an index must error")
	}
	if _, err := tr.NewSystem(nil, nil, tr.DefaultOptions()); err == nil {
		t.Error("nil inputs must error")
	}
	other := tr.CSTaxonomy()
	if _, err := tr.NewSystem(sys.Graph(), other, tr.DefaultOptions()); err != nil {
		// Same vocabulary size (18) — allowed structurally; semantic
		// mismatch is the caller's responsibility. A differently-sized
		// vocabulary must fail:
		t.Fatalf("same-size taxonomy rejected: %v", err)
	}
	small, _ := tr.NewVocabulary([]string{"a"})
	b := tr.NewGraphBuilder(small, 2)
	b.AddEdge(0, 1, tr.TopicsOf(0))
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.NewSystem(g, tr.WebTaxonomy(), tr.DefaultOptions()); err == nil {
		t.Error("vocabulary size mismatch must error")
	}
}

func TestPublicGraphBuilding(t *testing.T) {
	// The documented package-level flow, end to end through aliases only.
	tax := tr.WebTaxonomy()
	tech := tax.Vocabulary().MustLookup("technology")
	b := tr.NewGraphBuilder(tax.Vocabulary(), 3)
	b.SetNodeTopics(1, tr.TopicsOf(tech))
	b.AddEdge(0, 1, tr.TopicsOf(tech))
	b.AddEdge(2, 1, tr.TopicsOf(tech))
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tr.NewSystem(g, tax, tr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sys.Recommend(0, tech, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		// 0 already follows 1 and nothing else is reachable: with
		// exclude-followed semantics the list is empty.
		t.Fatalf("expected no recommendations, got %v", recs)
	}
	// Graph round trip through the public alias.
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadGraph(&buf); err != nil {
		t.Fatal(err)
	}
}
